"""`repro.serve`: a long-lived multi-session garbling server.

One :class:`GarbleServer` owns the garbler role for many concurrent
evaluator sessions.  The paper's premise — a fixed public circuit
garbled afresh per private input — makes this the natural scaling
unit: the netlists and their compiled
:class:`~repro.core.plan.CyclePlan` are built **once per worker
process** at spawn and shared (read-only) by every session that worker
runs, so N concurrent sessions pay ``workers`` compiles, not N.

Architecture (process pool, the default)::

    AsyncEdge (1 loop thread) ── hello parsed off-loop, per-state
         │                       deadlines, structured rejects
         │          new session ──> bounded accept queue ── dispatcher
         │                            │  (Full -> structured     │
         │                            │   "busy" reject)    idle worker?
         │                            │                          │
         │          reconnect ──── fd passed (SCM_RIGHTS) ──> worker
         │          stats probe ──> snapshot reply, close     processes
         └── result probe / redial of finished session        (1 session
                  └──> replay buffer (bounded, TTL'd)          at a time)

* **Worker pool** — ``workers`` forkserver processes, each of which
  rebuilds and pre-warms one compiled plan per served program at
  spawn (:mod:`repro.serve.worker`).  Sessions are handed to workers
  over a per-worker control channel (:mod:`repro.serve.ipc`); every
  (re)connected socket crosses to the owning worker as a file
  descriptor via ``socket.send_fds``, so checkpoint/resume routing
  keeps working across the process boundary.  Garbling therefore runs
  on ``min(workers, cores)`` cores instead of serializing on one GIL.
  ``pool="thread"`` retains the in-process pool (used automatically
  when the programs are not picklable, e.g. callable bit sources).
* **Admission control** — the accept queue is a bounded
  ``queue.Queue``; when it is full a new hello is answered with an
  immediate structured ``{"status": "busy", ...}`` welcome and the
  connection is closed.  Reconnects for live sessions bypass
  admission (they hold a worker already).  The ``accepted`` counter
  is bumped only once the welcome has actually reached the client; a
  client that vanishes mid-handshake has its queue entry cancelled so
  no worker burns a resume window on a linkless session.
* **Session lifecycle** — each admitted session runs the existing
  :class:`~repro.net.session.ResumableSession` state machine around a
  :class:`~repro.core.protocol.GarblerParty`; its ``connect`` callable
  pops from the session's link queue, which (re)connects feed.  A
  dropped evaluator redials the same server, names its session id in
  the hello, and resumes against the checkpoints the worker holds.
  Session state transitions and the ``completed``/``failed`` counters
  move together under the parent's lock, so a finished-counter
  observation implies the finished state is visible.
* **Stats** — counters live in a shared-memory block
  (``multiprocessing.Array``) written by both the parent (admission,
  rejects, probes) and the workers (the ``active`` gauge); per-session
  records are shipped back over the control channel into the parent's
  ring and the obs layer (``serve.*`` counters, ``serve-session``
  trace events), and served over the wire to any ``op: "stats"``
  hello.
* **Drain** — :meth:`GarbleServer.shutdown` (wired to SIGTERM/SIGINT
  by the CLI) drains the edge (stops accepting; every connection that
  had not been admitted yet — including one still mid-hello — gets a
  structured ``draining`` reject instead of a hang), waits out the
  accept queue's task accounting (every admitted session gets exactly
  one ``task_done``, whether it completed, failed, was cancelled, or
  was discarded by a hard stop), then stops the workers.
* **Result replay** — every finished session's decoded output is
  parked in a bounded TTL'd :class:`~repro.serve.replay.ReplayBuffer`
  keyed by session id + evaluator identity; a client that died after
  the final frame redials (or sends ``op: "result"``) and recovers
  its result bit-identically instead of an ``already finished``
  dead end.
* **Per-session garbler inputs** — a program built with
  ``alice_by_key`` lets each hello pick its garbler operand by key
  (``garbler_key``), turning one :class:`ServeProgram` into a keyed
  lookup service instead of a single fixed operand.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket as socket_mod
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..circuit.netlist import Netlist
from ..core.plan import warm_plan
from ..gc.channel import ChannelClosed, ChannelTimeout, FrameCorruption
from ..gc.ot import BaseOTCache
from ..net.links import Link, LinkClosed, LinkTimeout, PrefacedLink
from ..net.session import (
    ResumableSession,
    SessionHandoff,
    SessionResult,
    net_digest,
)
from ..net.tcp import TcpLink, connect_with_backoff
from ..obs import NULL_OBS
from .config import ServeConfig
from .edge import AsyncEdge
from .fleet import aggregate_shard_stats, rendezvous_select
from .handshake import (
    HELLO,
    MAX_HELLO_BYTES,
    WELCOME,
    recv_control,
    send_control,
)
from .ipc import IpcClosed, MsgChannel
from .replay import DENIED, HIT, ReplayBuffer
from .worker import (
    STAT_FIELDS,
    build_material_caches,
    exportable_ot_base,
    handoff_bundle,
    make_adopted_party,
    make_garbler_party,
    replay_payload,
    worker_main,
)

BitSource = Union[Sequence[int], Callable[[int], Sequence[int]]]

_SENTINEL = object()
_SEALED = object()

#: set_forkserver_preload must happen before the forkserver boots;
#: guard so repeated server construction doesn't re-set it.
_FORKSERVER_PRELOADED = False


def _forkserver_context():
    import multiprocessing as mp

    global _FORKSERVER_PRELOADED
    ctx = mp.get_context("forkserver")
    if not _FORKSERVER_PRELOADED:
        try:
            ctx.set_forkserver_preload(["repro.serve.worker"])
        except Exception:
            # Forkserver already running (or transiently unable to take
            # the preload): workers import lazily.  Do NOT latch the
            # flag — a later fresh forkserver context should retry the
            # preload instead of silently never getting it.
            pass
        else:
            _FORKSERVER_PRELOADED = True
    return ctx


def _main_module_spawnable() -> bool:
    """Whether worker processes can boot in this interpreter.

    Spawn/forkserver re-prepare ``__main__`` in the child from its
    module name or file path; a ``__main__`` that is neither (a stdin
    script, some embedded interpreters) makes every worker die during
    bootstrap, so ``pool="auto"`` must fall back to threads.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None:
        return True
    if getattr(getattr(main, "__spec__", None), "name", None):
        return True
    path = getattr(main, "__file__", None)
    if path is None:
        return True  # interactive: nothing to re-run, spawn skips it
    return os.path.exists(path)


@dataclass(frozen=True)
class ServeProgram:
    """One program the server is willing to garble.

    The server plays Alice, so the program bundles the circuit with
    the garbler-side inputs; the evaluator brings only its own private
    bits.  ``net`` is shared by every session over this program —
    engines never mutate the netlist, and the compiled plan cache is
    thread-safe — which is exactly what makes N sessions pay one
    compile per process.
    """

    net: Netlist
    cycles: int
    alice: BitSource = ()
    alice_init: Sequence[int] = ()
    public: BitSource = ()
    public_init: Sequence[int] = ()
    #: Optional per-session garbler inputs: a hello carrying
    #: ``garbler_key`` selects its operand from this table instead of
    #: the fixed ``alice`` source (a keyed lookup service rather than
    #: one operand for everybody).  Keyed sessions garble fresh — the
    #: recorded material transcripts bind the default operand.
    alice_by_key: Optional[Dict[str, BitSource]] = None


def registry_program(name: str, value: int = 0) -> ServeProgram:
    """Build a :class:`ServeProgram` from the bench-circuit registry
    (the same registry ``python -m repro party`` serves), with
    ``value`` as the garbler operand."""
    from ..net.cli import _registry

    entry = _registry()[name]
    net, cycles = entry.build()
    return ServeProgram(
        net=net, cycles=cycles, alice=entry.alice_source(value, cycles)
    )


def registry_keyed_program(
    name: str,
    values: Dict[str, int],
    value: int = 0,
) -> ServeProgram:
    """A registry program whose garbler operand is selected per
    session: a hello with ``garbler_key: k`` computes against
    ``values[k]``; a hello without a key uses ``value``."""
    from ..net.cli import _registry

    entry = _registry()[name]
    net, cycles = entry.build()
    return ServeProgram(
        net=net,
        cycles=cycles,
        alice=entry.alice_source(value, cycles),
        alice_by_key={
            k: entry.alice_source(v, cycles) for k, v in values.items()
        },
    )


class ServeStats:
    """Serve counters plus a ring of per-session records.

    The counters live in a flat block — a plain list under a
    ``threading.Lock`` for the thread pool, a shared-memory
    ``multiprocessing.Array`` (with its cross-process lock) for the
    process pool, where the workers write the ``active`` gauge
    directly.  Field layout is :data:`~repro.serve.worker.STAT_FIELDS`;
    each field also reads as a plain attribute (``stats.completed``).
    """

    def __init__(self, keep_sessions: int = 64, block=None,
                 lock=None) -> None:
        if block is None:
            block = [0] * len(STAT_FIELDS)
            lock = threading.Lock()
        self._block = block
        self._block_lock = lock
        self._ring_lock = threading.Lock()
        self._recent: "deque" = deque(maxlen=keep_sessions)

    def bump(self, name: str, n: int = 1) -> None:
        i = STAT_FIELDS.index(name)
        with self._block_lock:
            self._block[i] += n

    def done_snapshot(self) -> int:
        """``completed + failed`` as one atomic read (the
        ``max_sessions`` trigger must not see a torn pair)."""
        with self._block_lock:
            return (self._block[STAT_FIELDS.index("completed")]
                    + self._block[STAT_FIELDS.index("failed")])

    def record_session(self, record: dict) -> None:
        with self._ring_lock:
            self._recent.append(dict(record))

    def snapshot(self) -> dict:
        """Codec-safe snapshot (ints / strings / lists / dicts only)."""
        with self._block_lock:
            snap = {name: self._block[i]
                    for i, name in enumerate(STAT_FIELDS)}
        with self._ring_lock:
            snap["sessions"] = [dict(r) for r in self._recent]
        return snap


def _stat_property(index: int) -> property:
    def get(self: ServeStats) -> int:
        with self._block_lock:
            return self._block[index]

    return property(get)


for _i, _name in enumerate(STAT_FIELDS):
    setattr(ServeStats, _name, _stat_property(_i))
del _i, _name


@dataclass
class _ServeSession:
    """Server-side record of one evaluator session."""

    id: str
    program: str
    prog: ServeProgram
    #: queued -> active -> done | failed; ``cancelled`` is the
    #: admission-unwind terminal (welcome never reached the client).
    state: str = "queued"
    result: Optional[SessionResult] = None
    error: Optional[BaseException] = None
    wall_seconds: float = 0.0
    #: Process pool: index of the worker running this session (None
    #: until dispatched; links arriving earlier wait in ``_pending``).
    owner: Optional[int] = None
    #: Client identity from the hello (material epoch audit trail and
    #: base-OT cache key); None for anonymous sessions.
    client: Optional[str] = None
    #: Sender-side base-OT material negotiated at welcome time (the
    #: decision is snapshotted here so welcome and dispatch agree).
    ot_base: Optional[tuple] = None
    #: Key into the program's ``alice_by_key`` table (per-session
    #: garbler inputs); None runs the program's fixed operand.
    garbler_key: Optional[str] = None
    #: Fleet handoff: the adoption bundle an ``op: "adopt"`` hello
    #: delivered (this shard continues a session a draining peer
    #: started); rides the worker's ``run`` message.
    bundle: Optional[dict] = None
    #: Where a handed-off session went — redials of this session are
    #: answered with a ``moved`` welcome naming this (host, port).
    peer: Optional[tuple] = None
    #: Thread pool: set to interrupt the session at its next
    #: checkpoint boundary for drain-time handoff (the process pool
    #: signals its worker over the control channel instead).
    handoff: threading.Event = field(default_factory=threading.Event)
    _pending: List[tuple] = field(default_factory=list)
    _links: "queue.Queue" = field(default_factory=queue.Queue)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _sealed: bool = False

    def push_link(self, link: Link) -> bool:
        """Feed a (re)connect to the session's worker; False once the
        session has finished (the caller closes the link)."""
        with self._lock:
            if self._sealed:
                return False
            self._links.put(link)
            return True

    def pop_link(self, timeout: Optional[float]) -> Link:
        try:
            item = self._links.get(timeout=timeout)
        except queue.Empty:
            raise LinkTimeout(
                f"session {self.id!r}: evaluator did not (re)connect "
                f"within {timeout}s"
            ) from None
        if item is _SEALED:
            self._links.put(item)  # keep failing fast for later pops
            raise LinkClosed(f"session {self.id!r} is sealed")
        return item

    def seal(self) -> None:
        """Close pending/queued links and wake a blocked ``pop_link``
        so a cancelled session never costs a full resume window."""
        with self._lock:
            self._sealed = True
            pending, self._pending = self._pending, []
            while True:
                try:
                    item = self._links.get_nowait()
                except queue.Empty:
                    break
                if item is not _SEALED:
                    item.close()
            self._links.put(_SEALED)
        for link, _preface in pending:
            link.close()


class GarbleServer:
    """Multi-session garbling service (the garbler side, long-lived).

    Construct with the programs to serve, :meth:`start` the accept
    loop and worker pool, then either :meth:`serve_forever` (blocks
    until :meth:`request_shutdown`, e.g. from a signal handler) or
    drive clients directly in tests and call :meth:`shutdown`.

    ``pool`` selects the worker pool: ``"process"`` (one OS process
    per worker — true multi-core garbling), ``"thread"`` (the
    in-process pool), or ``"auto"`` (default: processes when the
    programs can cross a process boundary, threads otherwise).
    """

    def __init__(
        self,
        programs: Dict[str, ServeProgram],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_depth: int = 8,
        checkpoint_every: int = 4,
        timeout: Optional[float] = 30.0,
        resume_window: Optional[float] = None,
        max_attempts: int = 6,
        handshake_timeout: float = 5.0,
        hello_timeout: Optional[float] = None,
        idle_timeout: Optional[float] = 60.0,
        replay_ttl: float = 120.0,
        replay_capacity: int = 256,
        max_connections: int = 10_000,
        max_hello_bytes: int = MAX_HELLO_BYTES,
        ot: str = "simplest",
        ot_group: str = "modp512",
        engine: str = "compiled",
        heartbeat: Optional[float] = None,
        max_sessions: Optional[int] = None,
        pool: str = "auto",
        precompute: bool = True,
        material_depth: int = 2,
        fleet: bool = False,
        config: Optional[ServeConfig] = None,
        obs=NULL_OBS,
    ) -> None:
        if config is None:
            # Loose kwargs remain supported; they fold into the one
            # frozen config object that describes this server (and is
            # echoed verbatim in every ``op: "stats"`` reply).
            config = ServeConfig(
                host=host,
                port=port,
                workers=workers,
                queue_depth=queue_depth,
                checkpoint_every=checkpoint_every,
                timeout=timeout,
                resume_window=resume_window,
                max_attempts=max_attempts,
                #: ``hello_timeout`` is the historical name of the knob.
                handshake_timeout=(
                    hello_timeout if hello_timeout is not None
                    else handshake_timeout
                ),
                idle_timeout=idle_timeout,
                replay_ttl=replay_ttl,
                replay_capacity=replay_capacity,
                max_connections=max_connections,
                max_hello_bytes=max_hello_bytes,
                ot=ot,
                ot_group=ot_group,
                engine=engine,
                heartbeat=heartbeat,
                max_sessions=max_sessions,
                pool=pool,
                precompute=precompute,
                material_depth=material_depth,
                fleet=fleet,
            )
        self.config = config
        if config.workers < 1:
            raise ValueError("workers must be >= 1")
        if config.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.programs = dict(programs)
        if not self.programs:
            raise ValueError("a server needs at least one program")
        self.workers = config.workers
        self.checkpoint_every = config.checkpoint_every
        self.timeout = config.timeout
        #: How long a worker waits for a dropped evaluator to redial
        #: before burning one of its reconnect attempts.
        self.resume_window = (
            config.timeout if config.resume_window is None
            else config.resume_window
        )
        self.max_attempts = config.max_attempts
        self.handshake_timeout = config.handshake_timeout
        self.hello_timeout = self.handshake_timeout
        self.idle_timeout = config.idle_timeout
        self.replay_ttl = config.replay_ttl
        self.max_connections = config.max_connections
        self._replay = ReplayBuffer(
            ttl=config.replay_ttl, capacity=config.replay_capacity
        )
        self.ot = config.ot
        self.ot_group = config.ot_group
        self.engine = config.engine
        self.heartbeat = config.heartbeat
        self.max_sessions = config.max_sessions
        #: Offline/online split: pre-garble ``material_depth`` delta
        #: epochs per program before serving, so admitted sessions
        #: replay cached material and the online path is evaluate+OT.
        self.precompute = config.precompute
        self.material_depth = config.material_depth
        #: Fleet mode: honor ``op: "drain"`` / ``op: "adopt"`` hellos.
        self.fleet = config.fleet
        #: Affinity keys: the router routes a program to shards by this
        #: digest, and a draining shard picks each session's adoption
        #: peer by the same rendezvous hash over the same key.
        self.program_digests = {
            name: net_digest(prog.net, prog.cycles)
            for name, prog in self.programs.items()
        }
        self._handoff_peers: List[tuple] = []
        #: Sender-side base-OT material per client identity (survives
        #: worker churn — the parent owns it, workers get it in the
        #: ``run`` message and return fresh exports with ``done``).
        self._client_bases = BaseOTCache()
        self.obs = obs
        self.pool = self._resolve_pool(config.pool)
        if self.pool == "process":
            self._ctx = _forkserver_context()
            self._stats_block = self._ctx.Array("l", len(STAT_FIELDS))
            self.stats = ServeStats(
                block=self._stats_block,
                lock=self._stats_block.get_lock(),
            )
            self._procs: List[Optional[object]] = [None] * self.workers
            self._chans: List[Optional[MsgChannel]] = [None] * self.workers
            #: Workers that completed their pre-warm at least once; a
            #: worker dying *before* ready means spawning is broken in
            #: this environment, and respawning would loop forever.
            self._worker_ready: List[bool] = [False] * self.workers
            #: Tokens of workers ready for a session (fed by "ready"
            #: and session-finished messages).
            self._idle: "queue.Queue" = queue.Queue()
        else:
            self.stats = ServeStats()
            # One compile for all sessions: warm the thread-safe plan
            # cache now so no session thread pays netlist compilation.
            if self.engine == "compiled":
                for prog in self.programs.values():
                    warm_plan(prog.net)
            # Offline phase (thread pool): pre-garble material in the
            # parent; process-pool workers do the same at spawn.
            self._materials = build_material_caches(
                self.programs, self._worker_config()
            )
            for cache in self._materials.values():
                self.stats.bump("material_epochs", cache.prewarm())
        self._edge = AsyncEdge(
            self._edge_handshake,
            host=config.host,
            port=config.port,
            handshake_timeout=self.handshake_timeout,
            idle_timeout=config.idle_timeout,
            max_connections=config.max_connections,
            max_hello_bytes=config.max_hello_bytes,
            heartbeat=config.heartbeat,
            counter=self._edge_counter,
        )
        self.host, self.port = self._edge.host, self._edge.port
        self._queue: "queue.Queue" = queue.Queue(maxsize=config.queue_depth)
        self.queue_depth = config.queue_depth
        self._sessions: Dict[str, _ServeSession] = {}
        self._lock = threading.Lock()
        self._busy_streak = 0
        self._draining = False
        self._stopped = False
        self._shutdown_requested = threading.Event()
        self._threads: List[threading.Thread] = []
        self._started = False

    def _resolve_pool(self, pool: str) -> str:
        if pool == "thread":
            return "thread"
        if pool not in ("auto", "process"):
            raise ValueError(
                f"unknown pool {pool!r} (use 'auto', 'process' or 'thread')"
            )
        try:
            pickle.dumps(self.programs)
        except Exception as exc:
            if pool == "process":
                raise ValueError(
                    "pool='process' needs picklable programs (callable "
                    f"bit sources cannot cross the process boundary): {exc}"
                ) from exc
            return "thread"
        if not _main_module_spawnable():
            if pool == "process":
                raise ValueError(
                    "pool='process' cannot boot workers: __main__ is not "
                    "importable (run from a file or module, or use "
                    "pool='thread')"
                )
            return "thread"
        try:
            _forkserver_context()
        except Exception:
            if pool == "process":
                raise
            return "thread"
        return "process"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GarbleServer":
        if self._started:
            return self
        self._started = True
        self._edge.start()
        if self.pool == "process":
            for i in range(self.workers):
                self._spawn_worker(i)
            dispatch = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatch",
                daemon=True,
            )
            dispatch.start()
            self._threads.append(dispatch)
        else:
            for i in range(self.workers):
                t = threading.Thread(
                    target=self._worker_loop, args=(i,),
                    name=f"serve-worker-{i}", daemon=True,
                )
                t.start()
                self._threads.append(t)
        return self

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to drain and exit (signal-safe)."""
        self._shutdown_requested.set()

    def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown`, then drain and stop."""
        self._shutdown_requested.wait()
        self.shutdown(drain=True)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the server.

        ``drain=True`` (graceful, the SIGTERM path): stop accepting,
        let queued and active sessions run to completion, then stop
        the workers.  ``drain=False``: additionally discard queued
        sessions that no worker has picked up yet (their evaluators
        see EOF and fail on their side); active sessions still finish.
        """
        with self._lock:
            if self._stopped:
                return
            self._draining = True
        # Drain the edge first: stops accepting and answers every
        # connection still pre-admission (even mid-hello) with a
        # structured "draining" reject — no stalled-client hang.
        self._edge.begin_drain()
        if not drain:
            while True:
                try:
                    sess = self._queue.get_nowait()
                except queue.Empty:
                    break
                if sess is _SENTINEL:
                    self._queue.task_done()
                    continue
                with self._lock:
                    sess.state = "failed"
                    sess.error = ChannelClosed("server shut down")
                sess.seal()
                self._queue.task_done()
        # Wait for queued + active sessions to finish.  Task accounting
        # (one task_done per admitted session, wherever it ends) has no
        # gap between "popped from the queue" and "running", unlike
        # qsize()+active checks.
        q = self._queue
        with q.all_tasks_done:
            if timeout is None:
                while q.unfinished_tasks:
                    q.all_tasks_done.wait()
            else:
                endtime = perf_counter() + timeout
                while q.unfinished_tasks:
                    remaining = endtime - perf_counter()
                    if remaining <= 0:
                        break
                    q.all_tasks_done.wait(remaining)
        if self.pool == "process":
            if self._started:
                # Unblock the dispatcher whichever queue it waits on.
                self._idle.put(_SENTINEL)
                self._queue.put(_SENTINEL)
            for chan in self._chans:
                if chan is not None:
                    try:
                        chan.send({"type": "stop"})
                    except IpcClosed:
                        pass
            for proc in self._procs:
                if proc is not None:
                    proc.join(timeout=10.0)
            for chan in self._chans:
                if chan is not None:
                    chan.close()
            for proc in self._procs:
                if proc is not None and proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
        else:
            for _ in range(self.workers):
                self._queue.put(_SENTINEL)
        for t in self._threads:
            t.join(timeout=10.0)
        self._edge.stop()
        with self._lock:
            self._stopped = True
        self._shutdown_requested.set()
        if self.obs.enabled:
            self.obs.event("serve-shutdown", **self.counters())

    def __enter__(self) -> "GarbleServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=True)

    # -- introspection -------------------------------------------------------

    def counters(self) -> dict:
        snap = self.stats.snapshot()
        del snap["sessions"]
        return snap

    def stats_snapshot(self) -> dict:
        snap = self.stats.snapshot()
        snap.update(
            queued=self._queue.qsize(),
            queue_depth=self.queue_depth,
            workers=self.workers,
            pool=self.pool,
            draining=self._draining,
            programs=sorted(self.programs),
            handshake_timeout=self.handshake_timeout,
            idle_timeout=self.idle_timeout,
            replay_ttl=self.replay_ttl,
            replay_buffered=len(self._replay),
            max_connections=self.max_connections,
            fleet=self.fleet,
            config=self.config.to_dict(),
            program_digests=dict(self.program_digests),
        )
        return snap

    def fleet_stats_snapshot(self) -> dict:
        """Single-shard answer to ``op: "fleet-stats"``: the same shape
        the router aggregates, with this shard as the only member."""
        snap = self.stats_snapshot()
        return {
            "router": None,
            "shards": [{
                "id": f"{self.host}:{self.port}",
                "healthy": True,
                "draining": bool(snap.get("draining")),
                "stats": snap,
            }],
            "aggregate": aggregate_shard_stats([snap]),
        }

    def session_result(self, session_id: str) -> Optional[SessionResult]:
        with self._lock:
            sess = self._sessions.get(session_id)
        return None if sess is None else sess.result

    # -- accept path ---------------------------------------------------------

    def _edge_counter(self, name: str, n: int = 1) -> None:
        """Counter hook handed to the edge (runs on the loop thread)."""
        self.stats.bump(name, n)
        if self.obs.enabled:
            self.obs.inc(f"serve.{name}", n)

    def _edge_handshake(self, link: TcpLink, hello: dict,
                        leftover: bytes) -> None:
        """Edge handler: a fully parsed hello arriving off the loop.

        The welcome-ack deadline is a socket-level send timeout — a
        client that stops reading before its welcome turns into
        ``LinkClosed`` on the send, which the admission path already
        unwinds, instead of a stuck handshake thread."""
        link.settimeout(self.handshake_timeout)
        try:
            self._complete_handshake(link, hello, leftover)
        except (ChannelClosed, ChannelTimeout, FrameCorruption,
                LinkClosed, LinkTimeout, OSError):
            link.close()

    def _reject(self, link: Link, welcome: dict, counter: str) -> None:
        self.stats.bump(counter)
        if self.obs.enabled:
            self.obs.inc(f"serve.{counter}")
        send_control(link, WELCOME, welcome)
        link.close()

    def _retry_after(self, grew: bool) -> float:
        """Backoff guidance for busy/draining rejects: doubles with
        each consecutive reject, resets when admission succeeds."""
        with self._lock:
            if grew:
                self._busy_streak = min(self._busy_streak + 1, 8)
            streak = self._busy_streak
        return round(min(10.0, 0.1 * (2 ** max(streak - 1, 0))), 3)

    def _handle_connection(self, link: Link) -> None:
        """Blocking-read handshake for links that arrive outside the
        edge (tests drive this directly); the edge path parses the
        hello on the loop and enters at :meth:`_complete_handshake`."""
        tag, hello, leftover = recv_control(
            link, timeout=self.handshake_timeout
        )
        if tag != HELLO or not isinstance(hello, dict):
            raise FrameCorruption(f"expected {HELLO!r}, got {tag!r}")
        self._complete_handshake(link, hello, leftover)

    def _complete_handshake(self, link: Link, hello: dict,
                            leftover: bytes) -> None:
        op = hello.get("op", "session")
        if op == "stats":
            self.stats.bump("stats_probes")
            send_control(
                link, WELCOME,
                {"status": "stats", "stats": self.stats_snapshot()},
            )
            link.close()
            return
        if op == "fleet-stats":
            self.stats.bump("stats_probes")
            send_control(
                link, WELCOME,
                {"status": "fleet-stats", **self.fleet_stats_snapshot()},
            )
            link.close()
            return
        if op in ("drain", "adopt") and not self.fleet:
            self._reject(
                link,
                {"status": "error",
                 "reason": f"op {op!r} needs fleet mode (start the "
                           "server with fleet=True / --fleet)"},
                "rejected_error",
            )
            return
        if op == "drain":
            peers = hello.get("peers") or []
            try:
                handoffs = self.drain_handoff(
                    [(str(h), int(p)) for h, p in peers]
                )
            except (TypeError, ValueError):
                self._reject(
                    link,
                    {"status": "error",
                     "reason": "drain peers must be [host, port] pairs"},
                    "rejected_error",
                )
                return
            send_control(
                link, WELCOME,
                {"status": "ok", "draining": True, "handoffs": handoffs},
            )
            link.close()
            return
        if op == "adopt":
            self._handle_adopt(link, hello, leftover)
            return
        sid = hello.get("session")
        name = hello.get("program")
        if not isinstance(sid, str) or not sid:
            self._reject(
                link,
                {"status": "error", "reason": "hello carries no session id"},
                "rejected_error",
            )
            return
        if op == "result":
            self._answer_result_probe(link, hello, sid)
            return

        # Snapshot session + drain state under the lock: a worker
        # transitions sessions to done/failed under this same lock, so
        # the routing decision below never reads a torn state (the
        # old unlocked read could welcome a redial into a session that
        # sealed a microsecond later).
        with self._lock:
            sess = self._sessions.get(sid)
            draining = self._draining
            if sess is not None:
                sess_program, sess_state = sess.program, sess.state
                sess_peer = sess.peer
        if sess is None:
            # -- admission control for a brand-new session ----------------
            if draining:
                self._reject(
                    link,
                    {"status": "draining", "reason": "server is draining",
                     "retry_after_s": self._retry_after(grew=True)},
                    "rejected_busy",
                )
                return
            prog = self.programs.get(name)
            if prog is None:
                self._reject(
                    link,
                    {"status": "error",
                     "reason": f"unknown program {name!r}",
                     "programs": sorted(self.programs)},
                    "rejected_error",
                )
                return
            sess = _ServeSession(id=sid, program=name, prog=prog)
            client = hello.get("client")
            if isinstance(client, str) and client:
                sess.client = client
            gkey = hello.get("garbler_key")
            if gkey is not None:
                table = prog.alice_by_key
                if not isinstance(gkey, str) or table is None \
                        or gkey not in table:
                    known = sorted(table) if table else []
                    self._reject(
                        link,
                        {"status": "error",
                         "reason": f"unknown garbler key {gkey!r} for "
                                   f"program {name!r}",
                         "garbler_keys": known},
                        "rejected_error",
                    )
                    return
                sess.garbler_key = gkey
            # Base-OT reuse negotiation: a returning client that
            # advertises cached receiver material ("base_ot" in the
            # hello) gets "cached" back iff the server still holds the
            # matching sender side; otherwise "fresh" tells it to run
            # the base phase again.  Decided here, snapshotted on the
            # session, so the welcome and the worker dispatch agree
            # even if the cache churns in between.
            base_mode = None
            if self.ot == "extension":
                if sess.client is not None and hello.get("base_ot"):
                    sess.ot_base = self._client_bases.get(sess.client)
                base_mode = "cached" if sess.ot_base is not None else "fresh"
            with self._lock:
                try:
                    self._queue.put_nowait(sess)
                except queue.Full:
                    admitted = False
                else:
                    admitted = True
                    self._sessions[sid] = sess
            if not admitted:
                self._reject(
                    link,
                    {"status": "busy",
                     "reason": "accept queue is full",
                     "active": self.stats.active,
                     "queued": self._queue.qsize(),
                     "queue_depth": self.queue_depth,
                     "retry_after_s": self._retry_after(grew=True)},
                    "rejected_busy",
                )
                return
            with self._lock:
                self._busy_streak = 0
            welcome = {
                "status": "ok",
                "session": sid,
                "program": name,
                "cycles": prog.cycles,
                "checkpoint_every": self.checkpoint_every,
                "resumed": False,
            }
            if sess.garbler_key is not None:
                welcome["garbler_key"] = sess.garbler_key
            if base_mode is not None:
                welcome["base_ot"] = base_mode
            # Welcome before counting the admission: if the client
            # vanished between hello and welcome, unwind the queue
            # entry (the seal fails any worker that raced onto it
            # immediately) instead of leaving a linkless session to
            # burn a worker for a full resume window.
            try:
                send_control(link, WELCOME, welcome)
            except (ChannelClosed, LinkClosed, OSError):
                with self._lock:
                    sess.state = "cancelled"
                    self._sessions.pop(sid, None)
                sess.seal()
                link.close()
                return
            self.stats.bump("accepted")
            if self.obs.enabled:
                self.obs.inc("serve.accepted")
        else:
            # -- reconnect routing (on the locked snapshot) ----------------
            if sess_program != name:
                self._reject(
                    link,
                    {"status": "error",
                     "reason": f"session {sid!r} is bound to program "
                               f"{sess_program!r}"},
                    "rejected_error",
                )
                return
            if sess_state == "handed-off" and sess_peer is not None:
                # Drain-time handoff: the session now lives on a peer
                # shard.  Tell the evaluator where so it can redial
                # there and resume — this is what makes handoff work
                # even without a router in front.
                send_control(
                    link, WELCOME,
                    {"status": "moved", "session": sid,
                     "program": sess_program,
                     "peer": [sess_peer[0], sess_peer[1]]},
                )
                link.close()
                return
            if sess_state in ("done", "failed", "cancelled"):
                # A redial of a finished session is the replay path:
                # the client most likely died after the final frame
                # and wants its result back, not a re-run.
                status, entry = self._replay.fetch(sid, hello.get("client"))
                if status == HIT:
                    self.stats.bump("replay_hits")
                    if self.obs.enabled:
                        self.obs.inc("serve.replay_hits")
                    welcome = {"status": "result", "session": sid,
                               "program": sess_program}
                    welcome.update(entry.payload)
                    send_control(link, WELCOME, welcome)
                    link.close()
                    return
                self.stats.bump("replay_misses")
                if self.obs.enabled:
                    self.obs.inc("serve.replay_misses")
                if status == DENIED:
                    self._reject(
                        link,
                        {"status": "error",
                         "reason": f"session {sid!r} already finished; "
                                   "result replay denied: evaluator "
                                   "identity does not match"},
                        "rejected_error",
                    )
                    return
                self._reject(
                    link,
                    {"status": "unknown-session",
                     "reason": f"session {sid!r} already finished "
                               f"({sess_state}); no replayable result"},
                    "rejected_error",
                )
                return
            welcome = {
                "status": "ok",
                "session": sid,
                "program": name,
                "cycles": sess.prog.cycles,
                "checkpoint_every": self.checkpoint_every,
                "resumed": True,
            }
            if self.obs.enabled:
                self.obs.inc("serve.reconnects")
            # Welcome first, then feed the link: the worker writes to
            # the socket the moment it sees the link, and the welcome
            # must be the first thing the client reads.
            send_control(link, WELCOME, welcome)
        if not self._deliver_link(sess, link, leftover):
            link.close()  # finished between the snapshot and the push

    def _answer_result_probe(self, link: Link, hello: dict,
                             sid: str) -> None:
        """``op: "result"``: fetch a parked result without (re)joining
        the session.  Answers ``result`` (the parked payload),
        ``pending`` (session still running — retry), or a structured
        ``unknown-session`` reject."""
        status, entry = self._replay.fetch(sid, hello.get("client"))
        if status == HIT:
            self.stats.bump("replay_hits")
            if self.obs.enabled:
                self.obs.inc("serve.replay_hits")
            welcome = {"status": "result", "session": sid}
            welcome.update(entry.payload)
            send_control(link, WELCOME, welcome)
            link.close()
            return
        self.stats.bump("replay_misses")
        if self.obs.enabled:
            self.obs.inc("serve.replay_misses")
        if status == DENIED:
            self._reject(
                link,
                {"status": "error",
                 "reason": f"result replay for session {sid!r} denied: "
                           "evaluator identity does not match"},
                "rejected_error",
            )
            return
        with self._lock:
            sess = self._sessions.get(sid)
            state = None if sess is None else sess.state
            peer = None if sess is None else sess.peer
        if state == "handed-off" and peer is not None:
            send_control(
                link, WELCOME,
                {"status": "moved", "session": sid,
                 "peer": [peer[0], peer[1]]},
            )
            link.close()
            return
        if state in ("queued", "active"):
            send_control(
                link, WELCOME,
                {"status": "pending", "session": sid, "state": state,
                 "retry_after_s": self._retry_after(grew=False)},
            )
            link.close()
            return
        self._reject(
            link,
            {"status": "unknown-session",
             "reason": f"no replayable result for session {sid!r}"
                       + (f" (finished: {state})" if state else "")},
            "rejected_error",
        )

    def _park_replay(self, sess: _ServeSession,
                     payload: Optional[dict]) -> None:
        """Park a finished session's decoded result for redial
        recovery.  ``payload`` is None when the session died before
        the garbler ever decoded outputs — nothing to replay."""
        if payload is None or not self._replay.enabled:
            return
        self._replay.park(sess.id, sess.client, payload)

    def _deliver_link(self, sess: _ServeSession, link: Link,
                      leftover: bytes) -> bool:
        """Hand a (re)connected link to whatever runs the session:
        the session's in-process queue (thread pool) or the owning
        worker process via fd passing.  False if the session sealed."""
        if self.pool != "process":
            return sess.push_link(PrefacedLink(link, leftover))
        with sess._lock:
            if sess._sealed:
                return False
            if sess.owner is None:
                # Not dispatched yet: the dispatcher flushes these to
                # the worker right after the "run" message.
                sess._pending.append((link, leftover))
                return True
            owner = sess.owner
        self._send_link(owner, sess.id, link, leftover)
        return True

    def _send_link(self, owner: int, sid: str, link: Link,
                   leftover: bytes) -> None:
        """fd-pass one connected socket to a worker.  ``send_fds``
        duplicates the descriptor into the message, so the parent
        detaches (not closes — ``close()`` would shut the connection
        down for the worker too) and drops its copy."""
        if isinstance(link, TcpLink):
            fd = link.detach()
        else:  # pragma: no cover - accept loop only produces TcpLinks
            link.close()
            return
        chan = self._chans[owner]
        try:
            if chan is not None:
                chan.send(
                    {"type": "link", "session": sid, "preface": leftover},
                    fds=[fd],
                )
        except IpcClosed:
            pass  # worker died; _on_worker_exit fails the session
        finally:
            os.close(fd)

    # -- fleet: drain-time session handoff -----------------------------------

    def drain_handoff(self, peers: Sequence[tuple]) -> int:
        """Begin a soft drain, handing active sessions to peer shards.

        Marks the server draining at the *admission* level only — new
        sessions are rejected with the structured ``draining`` welcome,
        but the edge keeps accepting connections so reconnects, result
        probes and ``moved`` redirects still flow (a hard edge drain
        would strand the evaluators we are about to redirect).  Every
        active session is signalled to stop at its next checkpoint
        boundary; each interrupted session's bundle is shipped to the
        peer that the rendezvous hash owns for its program digest —
        the same hash the router uses, so routing and handoff agree.
        Returns the number of sessions signalled (sessions that finish
        before their next boundary simply complete here).
        """
        cleaned = []
        for h, p in peers:
            addr = (str(h), int(p))
            if addr != (self.host, self.port):
                cleaned.append(addr)
        with self._lock:
            self._draining = True
            self._handoff_peers = cleaned
            active = [s for s in self._sessions.values()
                      if s.state == "active"]
        if self.obs.enabled:
            self.obs.inc("serve.drains")
        if not cleaned:
            return 0
        signalled = 0
        for sess in active:
            if self.pool == "process":
                owner = sess.owner
                chan = self._chans[owner] if owner is not None else None
                if chan is None:
                    continue
                try:
                    chan.send({"type": "handoff", "session": sess.id})
                except IpcClosed:
                    continue
            else:
                sess.handoff.set()
            signalled += 1
        return signalled

    def _handle_adopt(self, link: Link, hello: dict,
                      leftover: bytes) -> None:
        """``op: "adopt"``: a draining peer hands over a mid-session
        checkpoint bundle.

        Three-phase exchange: the small hello is answered with an
        ``adopt-send`` welcome (the hello parser's byte cap is far
        below a material bundle, so the bundle cannot ride the hello),
        the peer then ships the pickled bundle as one ordinary control
        frame (the frame layer's cap applies), and the final welcome
        confirms the session is registered *before* the peer releases
        the evaluator — whose instant redial must never beat the
        bundle here.
        """
        sid = hello.get("session")
        name = hello.get("program")
        if not isinstance(sid, str) or not sid:
            self._reject(
                link,
                {"status": "error",
                 "reason": "adopt hello carries no session id"},
                "rejected_error",
            )
            return
        prog = self.programs.get(name)
        if prog is None:
            self._reject(
                link,
                {"status": "error",
                 "reason": f"unknown program {name!r}",
                 "programs": sorted(self.programs)},
                "rejected_error",
            )
            return
        if hello.get("digest") != self.program_digests[name]:
            self._reject(
                link,
                {"status": "error",
                 "reason": f"program {name!r} digest mismatch (fleet "
                           "shards must serve identical netlists)"},
                "rejected_error",
            )
            return
        with self._lock:
            known = sid in self._sessions
            draining = self._draining
        if draining:
            self._reject(
                link,
                {"status": "draining", "reason": "server is draining",
                 "retry_after_s": self._retry_after(grew=True)},
                "rejected_busy",
            )
            return
        if known:
            self._reject(
                link,
                {"status": "error",
                 "reason": f"session {sid!r} already exists here"},
                "rejected_error",
            )
            return
        send_control(link, WELCOME, {"status": "adopt-send",
                                     "session": sid})
        chan = PrefacedLink(link, leftover) if leftover else link
        tag, blob, _rest = recv_control(
            chan, timeout=max(self.handshake_timeout, 10.0)
        )
        if tag != "serve-bundle" or not isinstance(blob, (bytes, bytearray)):
            self._reject(
                link,
                {"status": "error",
                 "reason": f"expected a serve-bundle frame, got {tag!r}"},
                "rejected_error",
            )
            return
        try:
            bundle = pickle.loads(bytes(blob))
        except Exception:
            self._reject(
                link,
                {"status": "error",
                 "reason": "adoption bundle did not unpickle"},
                "rejected_error",
            )
            return
        if (not isinstance(bundle, dict)
                or bundle.get("session") != sid
                or bundle.get("program") != name):
            self._reject(
                link,
                {"status": "error",
                 "reason": "adoption bundle does not match its hello"},
                "rejected_error",
            )
            return
        sess = _ServeSession(id=sid, program=name, prog=prog)
        client = bundle.get("client")
        if isinstance(client, str) and client:
            sess.client = client
        gkey = bundle.get("garbler_key")
        if isinstance(gkey, str):
            sess.garbler_key = gkey
        base = bundle.get("ot_base")
        if base is not None:
            sess.ot_base = tuple(base)
        sess.bundle = bundle
        with self._lock:
            try:
                self._queue.put_nowait(sess)
            except queue.Full:
                admitted = False
            else:
                admitted = True
                self._sessions[sid] = sess
        if not admitted:
            self._reject(
                link,
                {"status": "busy",
                 "reason": "accept queue is full",
                 "retry_after_s": self._retry_after(grew=True)},
                "rejected_busy",
            )
            return
        with self._lock:
            self._busy_streak = 0
        try:
            send_control(link, WELCOME, {"status": "ok", "adopted": True,
                                         "session": sid})
        except (ChannelClosed, LinkClosed, OSError):
            # The peer vanished before the confirm; it will book the
            # handoff as failed and never release the evaluator toward
            # us, so unwind the admission (mirrors the welcome unwind
            # on the ordinary accept path).
            with self._lock:
                sess.state = "cancelled"
                self._sessions.pop(sid, None)
            sess.seal()
            link.close()
            return
        self.stats.bump("adopted")
        if self.obs.enabled:
            self.obs.inc("serve.adopted")
        link.close()

    def _adopt_on_peer(self, host: str, port: int, bundle: dict) -> bool:
        """Dialer side of the adoption exchange (see
        :meth:`_handle_adopt` for the three phases).  True iff the peer
        confirmed it registered the session."""
        try:
            blob = pickle.dumps(bundle)
        except Exception:
            return False
        link = None
        try:
            link = connect_with_backoff(host, port, attempts=3)
            send_control(link, HELLO, {
                "op": "adopt",
                "session": bundle["session"],
                "program": bundle["program"],
                "digest": bundle["digest"],
                "client": bundle.get("client"),
                "size": len(blob),
            })
            tag, welcome, leftover = recv_control(
                link, timeout=self.handshake_timeout
            )
            if (tag != WELCOME or not isinstance(welcome, dict)
                    or welcome.get("status") != "adopt-send"):
                return False
            chan = PrefacedLink(link, leftover) if leftover else link
            send_control(chan, "serve-bundle", blob)
            tag, welcome, _rest = recv_control(
                chan, timeout=max(self.handshake_timeout, 10.0)
            )
            return (tag == WELCOME and isinstance(welcome, dict)
                    and welcome.get("status") == "ok"
                    and bool(welcome.get("adopted")))
        except (ChannelClosed, ChannelTimeout, FrameCorruption,
                LinkClosed, LinkTimeout, OSError):
            return False
        finally:
            if link is not None:
                link.close()

    def _finish_handoff(self, index: int, msg: dict) -> None:
        """Apply a worker's handed-off outcome (process pool).

        Picks the adoption peer by the same rendezvous hash the router
        routes with, ships the bundle, flips the session state, *then*
        releases the worker — which holds the evaluator's link open
        until release, so the evaluator's redial can only observe the
        session after the peer has it (or after it is failed).
        """
        sid = msg["session"]
        bundle = msg.get("bundle")
        record = dict(msg.get("record") or {})
        with self._lock:
            sess = self._sessions.get(sid)
            peers = list(self._handoff_peers)
        ok, peer = False, None
        if bundle is not None and peers:
            peer = rendezvous_select(bundle["digest"], peers)
            if peer is not None:
                ok = self._adopt_on_peer(peer[0], peer[1], bundle)
        with self._lock:
            if sess is not None:
                if ok:
                    sess.state = "handed-off"
                    sess.peer = peer
                else:
                    sess.state = "failed"
                    sess.error = ChannelClosed(
                        "drain handoff failed: no peer adopted the "
                        "session"
                    )
                sess.wall_seconds = msg.get("wall", 0.0)
        self.stats.bump("handed_off" if ok else "failed")
        if not ok:
            record["state"] = "failed"
        chan = self._chans[index]
        try:
            if chan is not None:
                chan.send({"type": "handoff-release", "session": sid,
                           "ok": ok})
        except IpcClosed:
            pass
        if sess is not None:
            sess.seal()
        self.stats.record_session(record)
        if self.obs.enabled:
            self.obs.inc("serve.handed_off" if ok else "serve.failed")
            self.obs.event("serve-session", **record)
        self._queue.task_done()

    # -- process pool --------------------------------------------------------

    def _worker_config(self) -> dict:
        return {
            "checkpoint_every": self.checkpoint_every,
            "timeout": self.timeout,
            "resume_window": self.resume_window,
            "max_attempts": self.max_attempts,
            "ot": self.ot,
            "ot_group": self.ot_group,
            "engine": self.engine,
            "heartbeat": self.heartbeat,
            "precompute": self.precompute,
            "material_depth": self.material_depth,
        }

    def _spawn_worker(self, index: int) -> None:
        parent_sock, child_sock = socket_mod.socketpair(
            socket_mod.AF_UNIX, socket_mod.SOCK_STREAM
        )
        chan = MsgChannel(parent_sock)
        proc = self._ctx.Process(
            target=worker_main,
            args=(index, child_sock, self._stats_block, self.programs,
                  self._worker_config()),
            name=f"serve-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_sock.close()  # the worker holds the only live copy now
        self._procs[index] = proc
        self._chans[index] = chan
        reader = threading.Thread(
            target=self._reader_loop, args=(index, chan),
            name=f"serve-reader-{index}", daemon=True,
        )
        reader.start()
        self._threads.append(reader)

    def _reader_loop(self, index: int, chan: MsgChannel) -> None:
        """Parent-side drain of one worker's control channel."""
        while True:
            try:
                msg, fds = chan.recv()
            except IpcClosed:
                self._on_worker_exit(index)
                return
            for fd in fds:  # pragma: no cover - workers never send fds
                os.close(fd)
            mtype = msg.get("type")
            if mtype == "ready":
                self._worker_ready[index] = True
                self._idle.put(index)
            elif mtype in ("done", "failed"):
                self._finish_session(msg)
                self._idle.put(index)
            elif mtype == "handed-off":
                self._finish_handoff(index, msg)
                self._idle.put(index)

    def _finish_session(self, msg: dict) -> None:
        """Apply a worker's session outcome: state transition and the
        terminal counter move together under the parent lock."""
        sid = msg["session"]
        ok = msg["type"] == "done"
        record = msg.get("record") or {}
        with self._lock:
            sess = self._sessions.get(sid)
            if sess is not None:
                # Park before the state flips: a redial that observes
                # the finished state must find the entry already there.
                self._park_replay(sess, msg.get("replay"))
                sess.state = "done" if ok else "failed"
                sess.result = msg.get("result")
                sess.wall_seconds = msg.get("wall", 0.0)
                if msg.get("error"):
                    sess.error = RuntimeError(msg["error"])
        self.stats.bump("completed" if ok else "failed")
        if sess is not None:
            sess.seal()
            # A worker that ran a fresh base-OT phase exports the
            # sender side so this client's next session can reuse it.
            export = msg.get("ot_base_export")
            if ok and export is not None and sess.client is not None:
                self._client_bases.put(sess.client, tuple(export))
        self.stats.record_session(record)
        if self.obs.enabled:
            if ok:
                self.obs.inc("serve.completed")
                gates = record.get("garbled_nonxor", 0)
                if gates > 0:
                    self.obs.inc("serve.gates", gates)
            else:
                self.obs.inc("serve.failed")
            self.obs.event("serve-session", **record)
        self._queue.task_done()
        if self.max_sessions is not None:
            if self.stats.done_snapshot() >= self.max_sessions:
                self.request_shutdown()

    def _on_worker_exit(self, index: int) -> None:
        """A worker's channel hit EOF.  During drain that is the
        normal exit; otherwise the process died and its in-flight
        session (if any) must be failed and the worker replaced."""
        with self._lock:
            if self._draining or self._stopped:
                return
            owned = [
                s for s in self._sessions.values()
                if s.owner == index and s.state == "active"
            ]
            for sess in owned:
                sess.state = "failed"
                sess.error = ChannelClosed("worker process died")
        for sess in owned:
            sess.seal()
            self.stats.bump("failed")
            self.stats.bump("active", -1)  # the dead worker cannot
            record = {
                "session": sess.id,
                "program": sess.program,
                "state": "failed",
                "wall_ms": -1,
                "garbled_nonxor": -1,
                "tables_sent": -1,
                "reconnects": -1,
                "epoch": -1,
            }
            self.stats.record_session(record)
            if self.obs.enabled:
                self.obs.inc("serve.failed")
                self.obs.event("serve-session", **record)
            self._queue.task_done()
        if not self._worker_ready[index]:
            return  # bootstrap is broken here; don't respawn-loop
        self._worker_ready[index] = False
        try:
            self._spawn_worker(index)
        except Exception:  # pragma: no cover - spawn failure at exit
            pass

    def _dispatch_loop(self) -> None:
        """Marry idle workers to admitted sessions, preserving the
        accept queue's admission semantics: a session leaves the queue
        only when a worker is ready to run it."""
        self.obs.set_thread_label("serve-dispatch")
        while True:
            tok = self._idle.get()
            if tok is _SENTINEL:
                return
            sess = None
            while sess is None:
                cand = self._queue.get()
                if cand is _SENTINEL:
                    self._queue.task_done()
                    return
                with self._lock:
                    if cand.state == "cancelled":
                        cancelled = True
                    else:
                        cancelled = False
                        cand.state = "active"
                if cancelled:
                    self._queue.task_done()
                    continue  # same worker token, next session
                sess = cand
            with sess._lock:
                sess.owner = tok
                pending, sess._pending = sess._pending, []
            chan = self._chans[tok]
            try:
                if chan is None:
                    raise IpcClosed("worker is gone")
                chan.send({"type": "run", "session": sess.id,
                           "program": sess.program,
                           "client": sess.client,
                           "ot_base": sess.ot_base,
                           "garbler_key": sess.garbler_key,
                           "bundle": sess.bundle})
            except IpcClosed:
                # Worker died between going idle and the handoff; fail
                # the session (the evaluator redials into an error).
                with self._lock:
                    sess.state = "failed"
                    sess.error = ChannelClosed("worker process died")
                for link, _preface in pending:
                    link.close()
                sess.seal()
                self.stats.bump("failed")
                self._queue.task_done()
                continue
            for link, leftover in pending:
                self._send_link(tok, sess.id, link, leftover)

    # -- thread pool ---------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        self.obs.set_thread_label(f"serve-worker-{index}")
        while True:
            sess = self._queue.get()
            if sess is _SENTINEL:
                self._queue.task_done()
                return
            with self._lock:
                cancelled = sess.state == "cancelled"
            if cancelled:
                self._queue.task_done()
                continue
            try:
                self._run_session(sess)
            finally:
                self._queue.task_done()
            if self.max_sessions is not None:
                # One locked read: two separate attribute loads could
                # straddle a concurrent bump and miss the threshold.
                if self.stats.done_snapshot() >= self.max_sessions:
                    self.request_shutdown()

    def _run_session(self, sess: _ServeSession) -> None:
        prog = sess.prog
        with self._lock:
            sess.state = "active"
        self.stats.bump("active")
        t0 = perf_counter()
        run_msg = {"session": sess.id, "program": sess.program,
                   "client": sess.client, "ot_base": sess.ot_base,
                   "garbler_key": sess.garbler_key,
                   "bundle": sess.bundle}
        config = self._worker_config()
        if sess.bundle is not None:
            party = make_adopted_party(prog, config, run_msg, obs=self.obs)
            material_hit = None
        else:
            party, material_hit = make_garbler_party(
                sess.program, prog, config, run_msg, self._materials,
                obs=self.obs,
            )
        if material_hit is not None:
            self.stats.bump(
                "material_hits" if material_hit else "material_misses"
            )
            if not material_hit:
                self.stats.bump("material_epochs")
        # Handoff is limited to material-backed sessions: a fresh
        # party's free-XOR delta and memoized labels are bound to
        # in-process state no peer can reconstruct.
        can_handoff = getattr(party, "material", None) is not None
        session = ResumableSession(
            party,
            connect=lambda: sess.pop_link(self.resume_window),
            checkpoint_every=self.checkpoint_every,
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            heartbeat_interval=self.heartbeat,
            interrupt=sess.handoff.is_set if can_handoff else None,
            checkpoints=(sess.bundle or {}).get("checkpoints"),
            obs=self.obs,
        )
        reraise: Optional[BaseException] = None
        handoff: Optional[SessionHandoff] = None
        try:
            result = session.run()
        except SessionHandoff as exc:
            # Drain-time handoff (thread pool): ship the bundle to the
            # rendezvous-chosen peer, flip the state, and only then
            # close the session's transport — the evaluator stays
            # blocked on the open link until the peer has the session,
            # so its redial can never observe a half-moved state.
            handoff = exc
            bundle = handoff_bundle(party, run_msg, exc.checkpoints,
                                    exc.cycle)
            with self._lock:
                peers = list(self._handoff_peers)
            ok, peer = False, None
            if bundle is not None and peers:
                peer = rendezvous_select(bundle["digest"], peers)
                if peer is not None:
                    ok = self._adopt_on_peer(peer[0], peer[1], bundle)
            with self._lock:
                if ok:
                    sess.state = "handed-off"
                    sess.peer = peer
                else:
                    sess.state = "failed"
                    sess.error = ChannelClosed(
                        "drain handoff failed: no peer adopted the "
                        "session"
                    )
            self.stats.bump("handed_off" if ok else "failed")
            if self.obs.enabled:
                self.obs.inc("serve.handed_off" if ok else "serve.failed")
            session.close()
        except Exception as exc:
            with self._lock:
                # A session that failed *after* the garbler decoded
                # outputs (Bob died between result and goodbye) still
                # parks its result — that is the replay buffer's whole
                # reason to exist.
                self._park_replay(sess, replay_payload(None, party))
                sess.state = "failed"
                sess.error = exc
            self.stats.bump("failed")
            if self.obs.enabled:
                self.obs.inc("serve.failed")
        except BaseException as exc:
            # KeyboardInterrupt / SystemExit: record the failure but
            # re-raise so interpreter shutdown reaches the worker loop
            # instead of being booked as an ordinary failed session.
            with self._lock:
                sess.state = "failed"
                sess.error = exc
            self.stats.bump("failed")
            if self.obs.enabled:
                self.obs.inc("serve.failed")
            reraise = exc
        else:
            with self._lock:
                self._park_replay(sess, replay_payload(result, party))
                sess.state = "done"
                sess.result = result
            self.stats.bump("completed")
            if self.obs.enabled:
                self.obs.inc("serve.completed")
                self.obs.inc("serve.gates", result.stats.garbled_nonxor)
            export = exportable_ot_base(party, config, run_msg)
            if export is not None and sess.client is not None:
                self._client_bases.put(sess.client, export)
        finally:
            sess.wall_seconds = perf_counter() - t0
            self.stats.bump("active", -1)
            sess.seal()
            record = {
                "session": sess.id,
                "program": sess.program,
                "state": sess.state,
                "wall_ms": int(sess.wall_seconds * 1000),
                "garbled_nonxor": (
                    sess.result.stats.garbled_nonxor if sess.result else -1
                ),
                "tables_sent": (
                    sess.result.tables_sent
                    if sess.result and sess.result.tables_sent is not None
                    else -1
                ),
                "reconnects": sess.result.reconnects if sess.result else -1,
                "epoch": (
                    sess.result.material_epoch
                    if sess.result and sess.result.material_epoch is not None
                    else -1
                ),
            }
            self.stats.record_session(record)
            if self.obs.enabled:
                self.obs.event("serve-session", **record)
            # Offline phase between sessions: top the pool back up only
            # after the outcome is booked, never on the client's path —
            # and not at all when draining (a handoff means this shard
            # is on its way out; don't garble material nobody will use).
            if handoff is None:
                cache = self._materials.get(sess.program)
                if cache is not None:
                    self.stats.bump("material_epochs", cache.refill())
        if reraise is not None:
            raise reraise


def make_server(
    circuits: Union[str, Sequence[str]],
    value: int = 0,
    **kwargs,
) -> GarbleServer:
    """Convenience: a server over registry circuits, all sharing one
    garbler operand.  Keyword arguments go to :class:`GarbleServer`."""
    names = [circuits] if isinstance(circuits, str) else list(circuits)
    programs = {name: registry_program(name, value) for name in names}
    return GarbleServer(programs, **kwargs)
