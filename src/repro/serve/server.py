"""`repro.serve`: a long-lived multi-session garbling server.

One :class:`GarbleServer` process owns the garbler role for many
concurrent evaluator sessions.  The paper's premise — a fixed public
circuit garbled afresh per private input — makes this the natural
scaling unit: the netlists and their compiled
:class:`~repro.core.plan.CyclePlan` are built **once** at server
construction and shared (read-only) by every session's engine, so N
concurrent sessions pay one compile.

Architecture::

    TcpListener ── accept loop ── serve-hello handshake
         │                            │
         │          new session ──> bounded accept queue ──> worker pool
         │                            │  (Full -> structured  (N threads,
         │                            │   "busy" reject)       one
         │          reconnect ─────> live session's link       GarblerParty
         │                            queue                    session each)
         └── stats probe ──> snapshot reply, close

* **Admission control** — the accept queue is a bounded
  ``queue.Queue``; when it is full a new hello is answered with an
  immediate structured ``{"status": "busy", ...}`` welcome and the
  connection is closed.  Reconnects for live sessions bypass
  admission (they hold a worker already).
* **Session lifecycle** — each admitted session runs the existing
  :class:`~repro.net.session.ResumableSession` state machine around a
  :class:`~repro.core.protocol.GarblerParty`; its ``connect`` callable
  pops from the session's link queue, which the accept loop feeds on
  every (re)connect.  A dropped evaluator therefore redials the same
  server, names its session id in the hello, and resumes against the
  checkpoints the worker already holds.
* **Drain** — :meth:`GarbleServer.shutdown` (wired to SIGTERM/SIGINT
  by the CLI) closes the listener, lets queued and active sessions
  finish, then joins the workers.  New hellos racing the drain get a
  structured ``draining`` reject.
* **Stats** — counters and per-session records go to the obs layer
  (``serve.*`` counters, ``serve-session`` trace events) and are
  served over the wire to any client that sends a hello with
  ``op: "stats"``.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..circuit.netlist import Netlist
from ..core.plan import compile_plan
from ..core.protocol import GarblerParty, _expand_bits
from ..gc.channel import ChannelClosed, ChannelTimeout, FrameCorruption
from ..net.links import Link, LinkClosed, LinkTimeout, PrefacedLink
from ..net.session import ResumableSession, SessionResult
from ..net.tcp import TcpListener
from ..obs import NULL_OBS
from .handshake import HELLO, WELCOME, recv_control, send_control

BitSource = Union[Sequence[int], Callable[[int], Sequence[int]]]

_SENTINEL = object()


@dataclass(frozen=True)
class ServeProgram:
    """One program the server is willing to garble.

    The server plays Alice, so the program bundles the circuit with
    the garbler-side inputs; the evaluator brings only its own private
    bits.  ``net`` is shared by every session over this program —
    engines never mutate the netlist, and the compiled plan cache is
    thread-safe — which is exactly what makes N sessions pay one
    compile.
    """

    net: Netlist
    cycles: int
    alice: BitSource = ()
    alice_init: Sequence[int] = ()
    public: BitSource = ()
    public_init: Sequence[int] = ()


def registry_program(name: str, value: int = 0) -> ServeProgram:
    """Build a :class:`ServeProgram` from the bench-circuit registry
    (the same registry ``python -m repro party`` serves), with
    ``value`` as the garbler operand."""
    from ..net.cli import _registry

    entry = _registry()[name]
    net, cycles = entry.build()
    return ServeProgram(
        net=net, cycles=cycles, alice=entry.alice_source(value, cycles)
    )


class ServeStats:
    """Thread-safe serve counters plus a ring of per-session records."""

    def __init__(self, keep_sessions: int = 64) -> None:
        self._lock = threading.Lock()
        self.accepted = 0
        self.rejected_busy = 0
        self.rejected_error = 0
        self.completed = 0
        self.failed = 0
        self.active = 0
        self.stats_probes = 0
        self._recent: "deque" = deque(maxlen=keep_sessions)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def record_session(self, record: dict) -> None:
        with self._lock:
            self._recent.append(dict(record))

    def snapshot(self) -> dict:
        """Codec-safe snapshot (ints / strings / lists / dicts only)."""
        with self._lock:
            return {
                "accepted": self.accepted,
                "rejected_busy": self.rejected_busy,
                "rejected_error": self.rejected_error,
                "completed": self.completed,
                "failed": self.failed,
                "active": self.active,
                "stats_probes": self.stats_probes,
                "sessions": [dict(r) for r in self._recent],
            }


@dataclass
class _ServeSession:
    """Server-side record of one evaluator session."""

    id: str
    program: str
    prog: ServeProgram
    state: str = "queued"  # queued -> active -> done | failed
    result: Optional[SessionResult] = None
    error: Optional[BaseException] = None
    wall_seconds: float = 0.0
    _links: "queue.Queue" = field(default_factory=queue.Queue)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _sealed: bool = False

    def push_link(self, link: Link) -> bool:
        """Feed a (re)connect to the session's worker; False once the
        session has finished (the caller closes the link)."""
        with self._lock:
            if self._sealed:
                return False
            self._links.put(link)
            return True

    def pop_link(self, timeout: Optional[float]) -> Link:
        try:
            return self._links.get(timeout=timeout)
        except queue.Empty:
            raise LinkTimeout(
                f"session {self.id!r}: evaluator did not (re)connect "
                f"within {timeout}s"
            ) from None

    def seal(self) -> None:
        """Close any links that arrived after the session finished."""
        with self._lock:
            self._sealed = True
            while True:
                try:
                    self._links.get_nowait().close()
                except queue.Empty:
                    return


class GarbleServer:
    """Multi-session garbling service (the garbler side, long-lived).

    Construct with the programs to serve, :meth:`start` the accept
    loop and worker pool, then either :meth:`serve_forever` (blocks
    until :meth:`request_shutdown`, e.g. from a signal handler) or
    drive clients directly in tests and call :meth:`shutdown`.
    """

    def __init__(
        self,
        programs: Dict[str, ServeProgram],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_depth: int = 8,
        checkpoint_every: int = 4,
        timeout: Optional[float] = 30.0,
        resume_window: Optional[float] = None,
        max_attempts: int = 6,
        hello_timeout: float = 5.0,
        ot: str = "simplest",
        ot_group: str = "modp512",
        engine: str = "compiled",
        heartbeat: Optional[float] = None,
        max_sessions: Optional[int] = None,
        obs=NULL_OBS,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.programs = dict(programs)
        if not self.programs:
            raise ValueError("a server needs at least one program")
        # One compile for all sessions: warm the thread-safe plan
        # cache now so no session thread pays netlist compilation.
        for prog in self.programs.values():
            if engine == "compiled":
                compile_plan(prog.net)
        self.workers = workers
        self.checkpoint_every = checkpoint_every
        self.timeout = timeout
        #: How long a worker waits for a dropped evaluator to redial
        #: before burning one of its reconnect attempts.
        self.resume_window = timeout if resume_window is None else resume_window
        self.max_attempts = max_attempts
        self.hello_timeout = hello_timeout
        self.ot = ot
        self.ot_group = ot_group
        self.engine = engine
        self.heartbeat = heartbeat
        self.max_sessions = max_sessions
        self.obs = obs
        self.stats = ServeStats()
        self._listener = TcpListener(host=host, port=port)
        self.host, self.port = self._listener.host, self._listener.port
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self.queue_depth = queue_depth
        self._sessions: Dict[str, _ServeSession] = {}
        self._lock = threading.Lock()
        self._draining = False
        self._stopped = False
        self._shutdown_requested = threading.Event()
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GarbleServer":
        if self._started:
            return self
        self._started = True
        accept = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, args=(i,),
                name=f"serve-worker-{i}", daemon=True,
            )
            t.start()
            self._threads.append(t)
        return self

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to drain and exit (signal-safe)."""
        self._shutdown_requested.set()

    def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown`, then drain and stop."""
        self._shutdown_requested.wait()
        self.shutdown(drain=True)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the server.

        ``drain=True`` (graceful, the SIGTERM path): stop accepting,
        let queued and active sessions run to completion, then join
        the workers.  ``drain=False``: additionally discard queued
        sessions that no worker has picked up yet (their evaluators
        see EOF and fail on their side); active sessions still finish.
        """
        with self._lock:
            if self._stopped:
                return
            self._draining = True
        self._listener.close()  # accept loop exits on LinkClosed
        if not drain:
            while True:
                try:
                    sess = self._queue.get_nowait()
                except queue.Empty:
                    break
                with self._lock:
                    sess.state = "failed"
                    sess.error = ChannelClosed("server shut down")
                sess.seal()
                self._queue.task_done()
        # Wait for queued + active sessions to finish.  Task accounting
        # (get -> task_done in the worker) has no gap between "popped
        # from the queue" and "running", unlike qsize()+active checks.
        q = self._queue
        with q.all_tasks_done:
            if timeout is None:
                while q.unfinished_tasks:
                    q.all_tasks_done.wait()
            else:
                endtime = perf_counter() + timeout
                while q.unfinished_tasks:
                    remaining = endtime - perf_counter()
                    if remaining <= 0:
                        break
                    q.all_tasks_done.wait(remaining)
        for _ in range(self.workers):
            self._queue.put(_SENTINEL)
        for t in self._threads:
            t.join(timeout=10.0)
        with self._lock:
            self._stopped = True
        self._shutdown_requested.set()
        if self.obs.enabled:
            self.obs.event("serve-shutdown", **self.counters())

    def __enter__(self) -> "GarbleServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=True)

    # -- introspection -------------------------------------------------------

    def counters(self) -> dict:
        snap = self.stats.snapshot()
        del snap["sessions"]
        return snap

    def stats_snapshot(self) -> dict:
        snap = self.stats.snapshot()
        snap.update(
            queued=self._queue.qsize(),
            queue_depth=self.queue_depth,
            workers=self.workers,
            draining=self._draining,
            programs=sorted(self.programs),
        )
        return snap

    def session_result(self, session_id: str) -> Optional[SessionResult]:
        with self._lock:
            sess = self._sessions.get(session_id)
        return None if sess is None else sess.result

    # -- accept path ---------------------------------------------------------

    def _accept_loop(self) -> None:
        self.obs.set_thread_label("serve-accept")
        while True:
            try:
                link = self._listener.accept(timeout=0.25)
            except LinkTimeout:
                if self._draining:
                    return
                continue
            except LinkClosed:
                return
            try:
                self._handle_connection(link)
            except (ChannelClosed, ChannelTimeout, FrameCorruption,
                    LinkClosed, LinkTimeout):
                # A malformed, slow or vanished client must never take
                # the accept loop down.
                link.close()

    def _reject(self, link: Link, welcome: dict, counter: str) -> None:
        self.stats.bump(counter)
        if self.obs.enabled:
            self.obs.inc(f"serve.{counter}")
        send_control(link, WELCOME, welcome)
        link.close()

    def _handle_connection(self, link: Link) -> None:
        tag, hello, leftover = recv_control(link, timeout=self.hello_timeout)
        if tag != HELLO or not isinstance(hello, dict):
            raise FrameCorruption(f"expected {HELLO!r}, got {tag!r}")
        op = hello.get("op", "session")
        if op == "stats":
            self.stats.bump("stats_probes")
            send_control(
                link, WELCOME,
                {"status": "stats", "stats": self.stats_snapshot()},
            )
            link.close()
            return
        sid = hello.get("session")
        name = hello.get("program")
        if not isinstance(sid, str) or not sid:
            self._reject(
                link,
                {"status": "error", "reason": "hello carries no session id"},
                "rejected_error",
            )
            return

        with self._lock:
            sess = self._sessions.get(sid)
            draining = self._draining
        if sess is None:
            # -- admission control for a brand-new session ----------------
            if draining:
                self._reject(
                    link,
                    {"status": "draining", "reason": "server is draining"},
                    "rejected_busy",
                )
                return
            prog = self.programs.get(name)
            if prog is None:
                self._reject(
                    link,
                    {"status": "error",
                     "reason": f"unknown program {name!r}",
                     "programs": sorted(self.programs)},
                    "rejected_error",
                )
                return
            sess = _ServeSession(id=sid, program=name, prog=prog)
            with self._lock:
                try:
                    self._queue.put_nowait(sess)
                except queue.Full:
                    admitted = False
                else:
                    admitted = True
                    self._sessions[sid] = sess
            if not admitted:
                self._reject(
                    link,
                    {"status": "busy",
                     "reason": "accept queue is full",
                     "active": self.stats.active,
                     "queued": self._queue.qsize(),
                     "queue_depth": self.queue_depth},
                    "rejected_busy",
                )
                return
            self.stats.bump("accepted")
            if self.obs.enabled:
                self.obs.inc("serve.accepted")
            welcome = {
                "status": "ok",
                "session": sid,
                "program": name,
                "cycles": prog.cycles,
                "checkpoint_every": self.checkpoint_every,
                "resumed": False,
            }
        else:
            # -- reconnect routing -----------------------------------------
            if sess.program != name:
                self._reject(
                    link,
                    {"status": "error",
                     "reason": f"session {sid!r} is bound to program "
                               f"{sess.program!r}"},
                    "rejected_error",
                )
                return
            if sess.state in ("done", "failed"):
                self._reject(
                    link,
                    {"status": "error",
                     "reason": f"session {sid!r} already finished "
                               f"({sess.state})"},
                    "rejected_error",
                )
                return
            welcome = {
                "status": "ok",
                "session": sid,
                "program": name,
                "cycles": sess.prog.cycles,
                "checkpoint_every": self.checkpoint_every,
                "resumed": True,
            }
            if self.obs.enabled:
                self.obs.inc("serve.reconnects")
        # Welcome first, then feed the link: the worker writes to the
        # socket the moment it sees the link, and the welcome must be
        # the first thing the client reads.
        send_control(link, WELCOME, welcome)
        if not sess.push_link(PrefacedLink(link, leftover)):
            link.close()  # finished between the check and the push

    # -- worker path ---------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        self.obs.set_thread_label(f"serve-worker-{index}")
        while True:
            sess = self._queue.get()
            if sess is _SENTINEL:
                self._queue.task_done()
                return
            try:
                self._run_session(sess)
            finally:
                self._queue.task_done()
            if self.max_sessions is not None:
                done = self.stats.completed + self.stats.failed
                if done >= self.max_sessions:
                    self.request_shutdown()

    def _run_session(self, sess: _ServeSession) -> None:
        prog = sess.prog
        with self._lock:
            sess.state = "active"
        self.stats.bump("active")
        t0 = perf_counter()
        party = GarblerParty(
            prog.net,
            prog.cycles,
            _expand_bits(
                prog.net, "alice", prog.alice, prog.alice_init, prog.cycles
            ),
            public=prog.public,
            public_init=prog.public_init,
            ot_group=self.ot_group,
            ot=self.ot,
            obs=self.obs,
            engine=self.engine,
        )
        session = ResumableSession(
            party,
            connect=lambda: sess.pop_link(self.resume_window),
            checkpoint_every=self.checkpoint_every,
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            heartbeat_interval=self.heartbeat,
            obs=self.obs,
        )
        try:
            result = session.run()
        except BaseException as exc:
            with self._lock:
                sess.state = "failed"
                sess.error = exc
            self.stats.bump("failed")
            if self.obs.enabled:
                self.obs.inc("serve.failed")
        else:
            with self._lock:
                sess.state = "done"
                sess.result = result
            self.stats.bump("completed")
            if self.obs.enabled:
                self.obs.inc("serve.completed")
                self.obs.inc("serve.gates", result.stats.garbled_nonxor)
        finally:
            sess.wall_seconds = perf_counter() - t0
            self.stats.bump("active", -1)
            sess.seal()
            record = {
                "session": sess.id,
                "program": sess.program,
                "state": sess.state,
                "wall_ms": int(sess.wall_seconds * 1000),
                "garbled_nonxor": (
                    sess.result.stats.garbled_nonxor if sess.result else -1
                ),
                "tables_sent": (
                    sess.result.tables_sent
                    if sess.result and sess.result.tables_sent is not None
                    else -1
                ),
                "reconnects": sess.result.reconnects if sess.result else -1,
            }
            self.stats.record_session(record)
            if self.obs.enabled:
                self.obs.event("serve-session", **record)


def make_server(
    circuits: Union[str, Sequence[str]],
    value: int = 0,
    **kwargs,
) -> GarbleServer:
    """Convenience: a server over registry circuits, all sharing one
    garbler operand.  Keyword arguments go to :class:`GarbleServer`."""
    names = [circuits] if isinstance(circuits, str) else list(circuits)
    programs = {name: registry_program(name, value) for name in names}
    return GarbleServer(programs, **kwargs)
