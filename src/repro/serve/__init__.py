"""Multi-session garbling service: one long-lived garbler, N sessions.

The serve layer turns the one-shot ``python -m repro party`` garbler
into a server: an asyncio front door (:mod:`repro.serve.edge`) with
hardened handshake parsing and per-state deadlines, a ``serve-hello``
handshake that multiplexes sessions, a bounded worker pool running
:class:`~repro.core.protocol.GarblerParty` state machines, admission
control with structured busy rejects, checkpoint/resume routing so a
dropped evaluator reconnects to the *same* server and session, and a
bounded TTL'd replay buffer (:mod:`repro.serve.replay`) so a client
that dies after the final frame redials and recovers its result
bit-identically.  See :mod:`repro.serve.server` for the architecture.
"""

from .handshake import (
    HandshakeReject,
    ResultPending,
    ServeError,
    ServerBusy,
)
from .loadgen import LoadgenReport, SessionOutcome, run_loadgen
from .client import (
    fetch_stats,
    recover_result,
    run_registry_session,
    run_session,
)
from .replay import ReplayBuffer
from .server import (
    GarbleServer,
    ServeProgram,
    ServeStats,
    make_server,
    registry_keyed_program,
    registry_program,
)

__all__ = [
    "GarbleServer",
    "HandshakeReject",
    "LoadgenReport",
    "ReplayBuffer",
    "ResultPending",
    "ServeError",
    "ServeProgram",
    "ServeStats",
    "ServerBusy",
    "SessionOutcome",
    "fetch_stats",
    "make_server",
    "recover_result",
    "registry_keyed_program",
    "registry_program",
    "run_loadgen",
    "run_registry_session",
    "run_session",
]
