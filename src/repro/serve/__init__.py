"""Multi-session garbling service: one long-lived garbler, N sessions.

The serve layer turns the one-shot ``python -m repro party`` garbler
into a server: a persistent TCP listener, a ``serve-hello`` handshake
that multiplexes sessions, a bounded worker pool running
:class:`~repro.core.protocol.GarblerParty` state machines, admission
control with structured busy rejects, and checkpoint/resume routing so
a dropped evaluator reconnects to the *same* server and session.  See
:mod:`repro.serve.server` for the architecture.
"""

from .handshake import ServeError, ServerBusy
from .loadgen import LoadgenReport, SessionOutcome, run_loadgen
from .client import fetch_stats, run_registry_session, run_session
from .server import (
    GarbleServer,
    ServeProgram,
    ServeStats,
    make_server,
    registry_program,
)

__all__ = [
    "GarbleServer",
    "LoadgenReport",
    "ServeError",
    "ServeProgram",
    "ServeStats",
    "ServerBusy",
    "SessionOutcome",
    "fetch_stats",
    "make_server",
    "registry_program",
    "run_loadgen",
    "run_registry_session",
    "run_session",
]
