"""Multi-session garbling service: one long-lived garbler, N sessions.

The serve layer turns the one-shot ``python -m repro party`` garbler
into a server: an asyncio front door (:mod:`repro.serve.edge`) with
hardened handshake parsing and per-state deadlines, a ``serve-hello``
handshake that multiplexes sessions, a bounded worker pool running
:class:`~repro.core.protocol.GarblerParty` state machines, admission
control with structured busy rejects, checkpoint/resume routing so a
dropped evaluator reconnects to the *same* server and session, and a
bounded TTL'd replay buffer (:mod:`repro.serve.replay`) so a client
that dies after the final frame redials and recovers its result
bit-identically.  See :mod:`repro.serve.server` for the architecture.

Fleets: N ``fleet=True`` servers (shards) behind one
:class:`~repro.serve.router.SessionRouter` — digest-affinity routing,
health polling, ``op: "fleet-stats"`` aggregation and drain-time
session handoff between shards.  :class:`~repro.serve.client.
ServeClient` (returned by :func:`repro.api.connect`) talks to a shard
and a router identically.
"""

from .client import (
    ServeClient,
    fetch_fleet_stats,
    fetch_stats,
    recover_result,
    request_drain,
    request_reload,
    run_registry_session,
    run_session,
)
from .config import RouterConfig, ServeConfig, parse_hostport
from .fleet import LocalFleet, aggregate_shard_stats, rendezvous_select
from .handshake import (
    HandshakeReject,
    ResultPending,
    ServeError,
    ServerBusy,
)
from .loadgen import LoadgenReport, SessionOutcome, run_loadgen
from .replay import ReplayBuffer
from .router import SessionRouter
from .server import (
    GarbleServer,
    ServeProgram,
    ServeStats,
    make_server,
    registry_keyed_program,
    registry_program,
)

__all__ = [
    "GarbleServer",
    "HandshakeReject",
    "LoadgenReport",
    "LocalFleet",
    "ReplayBuffer",
    "ResultPending",
    "RouterConfig",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeProgram",
    "ServeStats",
    "ServerBusy",
    "SessionOutcome",
    "SessionRouter",
    "aggregate_shard_stats",
    "fetch_fleet_stats",
    "fetch_stats",
    "make_server",
    "parse_hostport",
    "recover_result",
    "registry_keyed_program",
    "registry_program",
    "rendezvous_select",
    "request_drain",
    "request_reload",
    "run_loadgen",
    "run_registry_session",
    "run_session",
]
