"""Load generator: K concurrent evaluator clients against one server.

Spawns ``clients`` evaluator sessions against a running
:class:`~repro.serve.server.GarbleServer`, with a configurable
arrival pattern:

* ``"burst"`` — all clients released simultaneously through a barrier
  (stress admission control and worker-pool contention);
* ``"paced"`` — client *i* starts at ``i * interval`` seconds
  (steady-state arrivals).

Clients run as threads by default; ``client_procs=True`` runs each
client in its own OS process (forkserver) instead.  Thread clients
share one GIL, so with a multi-core *server* the load generator itself
becomes the bottleneck — the evaluator does real garbled-circuit work
per session.  The throughput-scaling benchmark uses process clients so
the measured figure is the server's.

Every session is **verified**: all sessions over the same operand must
be bit-identical to each other (outputs and non-XOR gate counts — the
determinism the paper's cost metric rests on), and when the caller
knows the server's garbler operand, each decoded value is additionally
checked against the local plain-simulator run of the same circuit.

The report carries sessions/sec and p50/p95 session latency — the
numbers ``benchmarks/bench_serve_throughput.py`` tracks.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import uuid
from dataclasses import dataclass, field
from math import ceil
from time import perf_counter, sleep
from typing import Dict, List, Optional

from .client import ServeClient
from .handshake import ServerBusy


@dataclass
class SessionOutcome:
    """One client's view of its session."""

    session: str
    value: int
    ok: bool = False
    busy: bool = False
    seconds: float = 0.0
    result_value: Optional[int] = None
    outputs: Optional[List[int]] = None
    garbled_nonxor: Optional[int] = None
    reconnects: int = 0
    retries: int = 0
    error: Optional[str] = None


@dataclass
class LoadgenReport:
    """Aggregate of one load-generation run."""

    circuit: str
    clients: int
    arrival: str
    ok: int
    busy: int
    failed: int
    wall_seconds: float
    sessions_per_sec: float
    p50_seconds: float
    p95_seconds: float
    retries: int = 0
    outcomes: List[SessionOutcome] = field(default_factory=list)
    verify_errors: List[str] = field(default_factory=list)
    #: The workload family the run verified semantically (e.g.
    #: ``"psi"``), None for plain bench circuits.
    workload: Optional[str] = None

    def to_record(self) -> dict:
        """Flat JSON-able summary (the CLI's ``--json`` output)."""
        return {
            "circuit": self.circuit,
            "clients": self.clients,
            "arrival": self.arrival,
            "ok": self.ok,
            "busy": self.busy,
            "failed": self.failed,
            "retries": self.retries,
            "wall_seconds": round(self.wall_seconds, 4),
            "sessions_per_sec": round(self.sessions_per_sec, 3),
            "p50_seconds": round(self.p50_seconds, 4),
            "p95_seconds": round(self.p95_seconds, 4),
            "verify_errors": list(self.verify_errors),
            "workload": self.workload,
        }


def _client_id(spec: dict, i: int) -> Optional[str]:
    """Stable per-client identity (None when the run is anonymous)."""
    prefix = spec.get("client_prefix")
    return f"{prefix}-client-{i}" if prefix else None


def _make_client(host: str, port: int, i: int, spec: dict) -> ServeClient:
    """Client *i*'s endpoint handle, carrying its session defaults."""
    return ServeClient(
        host, port,
        client_id=_client_id(spec, i),
        timeout=spec["timeout"], max_attempts=spec["max_attempts"],
        engine=spec["engine"], ot=spec["ot"], ot_group=spec["ot_group"],
    )


def _warmup_client(i: int, value: int, client: ServeClient, circuit: str,
                   net, spec: dict) -> None:
    """Unmeasured sessions before the release barrier.

    Primes the serve-side caches for this client's identity (base-OT
    material after the first extension session) so the measured window
    observes the steady online phase, not first-contact costs.
    """
    for w in range(spec.get("warmup", 0)):
        client.run(circuit, value,
                   session_id=f"{spec['prefix']}-warm-{i}-{w}", net=net)


def _one_session(out: SessionOutcome, client: ServeClient, circuit: str,
                 net, spec: dict) -> None:
    """Run one evaluator session, recording the outcome in ``out``.

    A busy/overload reject is retried up to ``spec["busy_retries"]``
    times, sleeping the server's ``retry_after_s`` backoff hint between
    attempts — the structured reject exists so honest clients yield
    exactly as long as the server asks, instead of hammering or giving
    up.  Exhausting the budget records the session as ``busy``.
    """
    budget = spec.get("busy_retries", 0)
    t0 = perf_counter()
    try:
        while True:
            try:
                res = client.run(circuit, out.value,
                                 session_id=out.session, net=net)
            except ServerBusy as exc:
                if budget <= 0:
                    out.busy = True
                    out.error = str(exc)
                    return
                budget -= 1
                out.retries += 1
                hint = exc.welcome.get("retry_after_s")
                delay = hint if isinstance(hint, (int, float)) else 0.1
                sleep(min(max(float(delay), 0.0), 5.0))
            except BaseException as exc:
                out.error = f"{type(exc).__name__}: {exc}"
                return
            else:
                out.ok = True
                out.result_value = res.value
                out.outputs = list(res.outputs)
                out.garbled_nonxor = res.stats.garbled_nonxor
                out.reconnects = res.reconnects
                return
    finally:
        out.seconds = perf_counter() - t0


def _proc_client_main(i: int, barrier, outq, host: str, port: int,
                      circuit: str, arrival: str, interval: float,
                      session: str, value: int, spec: dict) -> None:
    """One process client (module-level so forkserver can import it).

    Builds its own netlist *before* the release barrier so per-process
    setup cost never pollutes the measured window, then runs exactly
    the thread client's session path.
    """
    out = SessionOutcome(session=session, value=value)
    try:
        from ..core.plan import warm_plan
        from ..net.cli import _registry

        net, _cycles = _registry()[circuit].build()
        if spec["engine"] == "compiled":
            # Thread clients share one process-wide plan cache, so all
            # but the first session ride a warm plan; give each client
            # process the same footing before the measured window.
            warm_plan(net)
        client = _make_client(host, port, i, spec)
        warmed = True
        try:
            _warmup_client(i, value, client, circuit, net, spec)
        except BaseException as exc:
            # Reach the barrier regardless: one client's warmup failure
            # must not strand the others' release.
            out.error = f"warmup failed: {type(exc).__name__}: {exc}"
            warmed = False
        barrier.wait()
        if warmed:
            if arrival == "paced" and i:
                sleep(i * interval)
            _one_session(out, client, circuit, net, spec)
    except BaseException as exc:  # noqa: BLE001 - ship, don't hang parent
        if out.error is None:
            out.error = f"{type(exc).__name__}: {exc}"
    finally:
        outq.put((i, out))


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty).

    Uses the ceil-based nearest-rank definition: the smallest value
    with at least ``q`` of the sample at or below it.  The previous
    ``round(q * (n - 1))`` form leaned on banker's rounding, so at
    small N the p95 could land *below* the p50's rank neighbourhood
    (e.g. n=2 gave p95 = the minimum).
    """
    n = len(sorted_vals)
    if not n:
        return 0.0
    idx = min(n - 1, max(0, ceil(q * n) - 1))
    return sorted_vals[idx]


def run_loadgen(
    host: str,
    port: int,
    circuit: str,
    clients: int = 4,
    *,
    arrival: str = "burst",
    interval: float = 0.05,
    base_value: int = 1000,
    values: Optional[List[int]] = None,
    server_value: Optional[int] = None,
    session_prefix: Optional[str] = None,
    timeout: Optional[float] = 30.0,
    max_attempts: int = 3,
    engine: str = "compiled",
    ot: str = "simplest",
    ot_group: str = "modp512",
    verify: bool = True,
    client_procs: bool = False,
    client_prefix: Optional[str] = None,
    warmup: int = 0,
    busy_retries: int = 2,
    workload: Optional[str] = None,
) -> LoadgenReport:
    """Run ``clients`` verified sessions and aggregate the outcome.

    Client *i* uses Bob operand ``values[i]`` (default
    ``base_value + i``).  ``server_value`` — the garbler's operand, if
    the caller controls the server — arms full result verification
    against the local simulator.  A :class:`ServerBusy` reject counts
    as ``busy``, any other failure as ``failed``; both leave
    ``ok`` sessions unaffected.  ``client_procs=True`` runs each
    client in its own process (see the module docstring).

    ``client_prefix`` gives client *i* the stable identity
    ``f"{client_prefix}-client-{i}"`` across its sessions, arming the
    serve layer's per-client caches (base-OT reuse).  ``warmup`` runs
    that many unmeasured sessions per client *before* the release
    barrier, so the measured window is the steady online phase — the
    offline/online split benchmark measures its "online" wave this
    way.  A warmup failure marks the client failed without running its
    measured session.

    ``busy_retries`` is each client's budget for re-dialing after a
    busy/overload reject, sleeping the server's ``retry_after_s`` hint
    between attempts; the total number of such retries lands in the
    report's ``retries`` counter.  Pass 0 for the old fail-fast
    behaviour (admission-control tests want the reject itself).

    ``workload`` names a workload family (``"psi"``) whose circuits
    carry application semantics beyond the bit-level contract: on top
    of the standard ``_verify`` pass (cross-session bit-identity +
    local simulator), each ok outcome's decoded result is checked
    against the family's plain-python oracle
    (:func:`repro.workloads.verify_outcomes` — intersection sizes and
    membership flags for PSI).  Requires ``server_value``.
    """
    if arrival not in ("burst", "paced"):
        raise ValueError(f"unknown arrival pattern {arrival!r}")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    if workload is not None:
        from ..workloads import WORKLOAD_FAMILIES

        if workload not in WORKLOAD_FAMILIES:
            raise ValueError(
                f"unknown workload family {workload!r}; "
                f"known: {list(WORKLOAD_FAMILIES)}"
            )
    from ..net.cli import _registry

    entry = _registry()[circuit]
    #: One netlist shared by every client thread: same sharing shape
    #: as the server, exercising the thread-safe plan cache.  (Process
    #: clients each rebuild their own; this one still feeds _verify.)
    net, cycles = entry.build()
    vals = list(values) if values is not None else [
        base_value + i for i in range(clients)
    ]
    if len(vals) != clients:
        raise ValueError("values must have one entry per client")
    prefix = session_prefix or f"loadgen-{uuid.uuid4().hex[:8]}"
    spec = {
        "timeout": timeout, "max_attempts": max_attempts,
        "engine": engine, "ot": ot, "ot_group": ot_group,
        "client_prefix": client_prefix, "warmup": warmup,
        "prefix": prefix, "busy_retries": busy_retries,
    }

    outcomes = [
        SessionOutcome(session=f"{prefix}-{i}", value=vals[i])
        for i in range(clients)
    ]

    if client_procs:
        wall = _run_process_clients(
            outcomes, host, port, circuit, arrival, interval, spec
        )
    else:
        wall = _run_thread_clients(
            outcomes, host, port, circuit, net, arrival, interval, spec
        )

    ok = [o for o in outcomes if o.ok]
    busy = [o for o in outcomes if o.busy]
    failed = [o for o in outcomes if not o.ok and not o.busy]
    verify_errors: List[str] = []
    if verify and ok:
        verify_errors = _verify(entry, net, cycles, ok, server_value)
    if workload and ok:
        from ..workloads import verify_outcomes

        verify_errors = verify_errors + verify_outcomes(
            circuit, server_value, ok
        )

    latencies = sorted(o.seconds for o in ok)
    return LoadgenReport(
        circuit=circuit,
        clients=clients,
        arrival=arrival,
        ok=len(ok),
        busy=len(busy),
        failed=len(failed),
        wall_seconds=wall,
        sessions_per_sec=(len(ok) / wall) if wall > 0 else 0.0,
        p50_seconds=_percentile(latencies, 0.50),
        p95_seconds=_percentile(latencies, 0.95),
        retries=sum(o.retries for o in outcomes),
        outcomes=outcomes,
        verify_errors=verify_errors,
        workload=workload,
    )


def _run_thread_clients(outcomes: List[SessionOutcome], host: str,
                        port: int, circuit: str, net, arrival: str,
                        interval: float, spec: dict) -> float:
    """Thread clients behind a release barrier; returns wall seconds."""
    clients = len(outcomes)
    barrier = threading.Barrier(clients + 1)
    t_zero: List[float] = [0.0]

    def client_main(i: int) -> None:
        client = _make_client(host, port, i, spec)
        warmed = True
        try:
            _warmup_client(i, outcomes[i].value, client, circuit, net,
                           spec)
        except BaseException as exc:
            outcomes[i].error = (
                f"warmup failed: {type(exc).__name__}: {exc}"
            )
            warmed = False
        barrier.wait()
        if not warmed:
            return
        if arrival == "paced":
            wake = t_zero[0] + i * interval
            delay = wake - perf_counter()
            if delay > 0:
                sleep(delay)
        _one_session(outcomes[i], client, circuit, net, spec)

    threads = [
        threading.Thread(target=client_main, args=(i,),
                         name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_zero[0] = perf_counter()
    wall0 = perf_counter()
    for t in threads:
        t.join()
    return perf_counter() - wall0


def _run_process_clients(outcomes: List[SessionOutcome], host: str,
                         port: int, circuit: str, arrival: str,
                         interval: float, spec: dict) -> float:
    """One OS process per client; returns wall seconds.

    The barrier releases only after every process has built its
    netlist, so the measured window starts with all clients poised to
    dial, matching the thread path's semantics.
    """
    clients = len(outcomes)
    ctx = multiprocessing.get_context("forkserver")
    barrier = ctx.Barrier(clients + 1)
    outq = ctx.Queue()
    procs = [
        ctx.Process(
            target=_proc_client_main,
            args=(i, barrier, outq, host, port, circuit, arrival,
                  interval, outcomes[i].session, outcomes[i].value, spec),
            name=f"loadgen-{i}", daemon=True,
        )
        for i in range(clients)
    ]
    for p in procs:
        p.start()
    try:
        # A child that dies before reaching the barrier (import error,
        # OOM kill) must break it rather than deadlock the run; the
        # break propagates to the surviving children, whose outcome
        # messages then carry the BrokenBarrierError.
        barrier.wait(timeout=120.0)
    except threading.BrokenBarrierError:
        pass
    wall0 = perf_counter()
    got = 0
    while got < clients:
        try:
            i, out = outq.get(timeout=5.0)
        except queue.Empty:
            if any(p.is_alive() for p in procs):
                continue
            # Every process exited without reporting (killed hard):
            # whatever outcomes are missing stay at their error-free
            # defaults with ok=False, which counts as failed below.
            for o in outcomes:
                if o.error is None and not o.ok and not o.busy:
                    o.error = "client process died without reporting"
            break
        outcomes[i] = out
        got += 1
    wall = perf_counter() - wall0
    for p in procs:
        p.join()
    return wall


def _verify(entry, net, cycles, ok_outcomes, server_value) -> List[str]:
    """Cross-session and (optionally) against-simulator verification."""
    errors: List[str] = []
    # Sessions sharing an operand must be bit-identical to each other.
    by_value: Dict[int, SessionOutcome] = {}
    for o in ok_outcomes:
        first = by_value.setdefault(o.value, o)
        if first is not o:
            if o.outputs != first.outputs:
                errors.append(
                    f"{o.session}: outputs diverge from {first.session} "
                    f"for the same operand"
                )
            if o.garbled_nonxor != first.garbled_nonxor:
                errors.append(
                    f"{o.session}: gate count {o.garbled_nonxor} != "
                    f"{first.garbled_nonxor} ({first.session})"
                )
    if server_value is None:
        return errors
    # Full result check against the local plain run of the circuit.
    from .. import api

    expected: Dict[int, object] = {}
    for o in ok_outcomes:
        ref = expected.get(o.value)
        if ref is None:
            ref = api.run(
                net,
                {
                    "alice": entry.alice_source(server_value, cycles),
                    "bob": entry.bob_source(o.value, cycles),
                },
                mode="local",
                cycles=cycles,
            )
            expected[o.value] = ref
        if o.result_value != ref.value or o.outputs != list(ref.outputs):
            errors.append(
                f"{o.session}: decoded value {o.result_value} != "
                f"local reference {ref.value}"
            )
        if o.garbled_nonxor != ref.stats.garbled_nonxor:
            errors.append(
                f"{o.session}: gate count {o.garbled_nonxor} != local "
                f"reference {ref.stats.garbled_nonxor}"
            )
    return errors
