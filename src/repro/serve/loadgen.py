"""Load generator: K concurrent evaluator clients against one server.

Spawns ``clients`` evaluator sessions (one thread each) against a
running :class:`~repro.serve.server.GarbleServer`, with a configurable
arrival pattern:

* ``"burst"`` — all clients released simultaneously through a barrier
  (stress admission control and worker-pool contention);
* ``"paced"`` — client *i* starts at ``i * interval`` seconds
  (steady-state arrivals).

Every session is **verified**: all sessions over the same operand must
be bit-identical to each other (outputs and non-XOR gate counts — the
determinism the paper's cost metric rests on), and when the caller
knows the server's garbler operand, each decoded value is additionally
checked against the local plain-simulator run of the same circuit.

The report carries sessions/sec and p50/p95 session latency — the
numbers ``benchmarks/bench_serve_throughput.py`` tracks.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Dict, List, Optional

from .client import run_registry_session
from .handshake import ServerBusy


@dataclass
class SessionOutcome:
    """One client's view of its session."""

    session: str
    value: int
    ok: bool = False
    busy: bool = False
    seconds: float = 0.0
    result_value: Optional[int] = None
    outputs: Optional[List[int]] = None
    garbled_nonxor: Optional[int] = None
    reconnects: int = 0
    error: Optional[str] = None


@dataclass
class LoadgenReport:
    """Aggregate of one load-generation run."""

    circuit: str
    clients: int
    arrival: str
    ok: int
    busy: int
    failed: int
    wall_seconds: float
    sessions_per_sec: float
    p50_seconds: float
    p95_seconds: float
    outcomes: List[SessionOutcome] = field(default_factory=list)
    verify_errors: List[str] = field(default_factory=list)

    def to_record(self) -> dict:
        """Flat JSON-able summary (the CLI's ``--json`` output)."""
        return {
            "circuit": self.circuit,
            "clients": self.clients,
            "arrival": self.arrival,
            "ok": self.ok,
            "busy": self.busy,
            "failed": self.failed,
            "wall_seconds": round(self.wall_seconds, 4),
            "sessions_per_sec": round(self.sessions_per_sec, 3),
            "p50_seconds": round(self.p50_seconds, 4),
            "p95_seconds": round(self.p95_seconds, 4),
            "verify_errors": list(self.verify_errors),
        }


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(round(q * (len(sorted_vals) - 1)))))
    return sorted_vals[idx]


def run_loadgen(
    host: str,
    port: int,
    circuit: str,
    clients: int = 4,
    *,
    arrival: str = "burst",
    interval: float = 0.05,
    base_value: int = 1000,
    values: Optional[List[int]] = None,
    server_value: Optional[int] = None,
    session_prefix: Optional[str] = None,
    timeout: Optional[float] = 30.0,
    max_attempts: int = 3,
    engine: str = "compiled",
    ot: str = "simplest",
    ot_group: str = "modp512",
    verify: bool = True,
) -> LoadgenReport:
    """Run ``clients`` verified sessions and aggregate the outcome.

    Client *i* uses Bob operand ``values[i]`` (default
    ``base_value + i``).  ``server_value`` — the garbler's operand, if
    the caller controls the server — arms full result verification
    against the local simulator.  A :class:`ServerBusy` reject counts
    as ``busy``, any other failure as ``failed``; both leave
    ``ok`` sessions unaffected.
    """
    if arrival not in ("burst", "paced"):
        raise ValueError(f"unknown arrival pattern {arrival!r}")
    from ..net.cli import _registry

    entry = _registry()[circuit]
    #: One netlist shared by every client thread: same sharing shape
    #: as the server, exercising the thread-safe plan cache.
    net, cycles = entry.build()
    vals = list(values) if values is not None else [
        base_value + i for i in range(clients)
    ]
    if len(vals) != clients:
        raise ValueError("values must have one entry per client")
    prefix = session_prefix or f"loadgen-{uuid.uuid4().hex[:8]}"

    outcomes = [
        SessionOutcome(session=f"{prefix}-{i}", value=vals[i])
        for i in range(clients)
    ]
    barrier = threading.Barrier(clients + 1)
    t_zero: List[float] = [0.0]

    def client_main(i: int) -> None:
        out = outcomes[i]
        barrier.wait()
        if arrival == "paced":
            wake = t_zero[0] + i * interval
            delay = wake - perf_counter()
            if delay > 0:
                sleep(delay)
        t0 = perf_counter()
        try:
            res = run_registry_session(
                host, port, circuit, out.value,
                session_id=out.session, net=net,
                timeout=timeout, max_attempts=max_attempts,
                engine=engine, ot=ot, ot_group=ot_group,
            )
        except ServerBusy as exc:
            out.busy = True
            out.error = str(exc)
        except BaseException as exc:
            out.error = f"{type(exc).__name__}: {exc}"
        else:
            out.ok = True
            out.result_value = res.value
            out.outputs = list(res.outputs)
            out.garbled_nonxor = res.stats.garbled_nonxor
            out.reconnects = res.reconnects
        finally:
            out.seconds = perf_counter() - t0

    threads = [
        threading.Thread(target=client_main, args=(i,),
                         name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_zero[0] = perf_counter()
    wall0 = perf_counter()
    for t in threads:
        t.join()
    wall = perf_counter() - wall0

    ok = [o for o in outcomes if o.ok]
    busy = [o for o in outcomes if o.busy]
    failed = [o for o in outcomes if not o.ok and not o.busy]
    verify_errors: List[str] = []
    if verify and ok:
        verify_errors = _verify(entry, net, cycles, ok, server_value)

    latencies = sorted(o.seconds for o in ok)
    return LoadgenReport(
        circuit=circuit,
        clients=clients,
        arrival=arrival,
        ok=len(ok),
        busy=len(busy),
        failed=len(failed),
        wall_seconds=wall,
        sessions_per_sec=(len(ok) / wall) if wall > 0 else 0.0,
        p50_seconds=_percentile(latencies, 0.50),
        p95_seconds=_percentile(latencies, 0.95),
        outcomes=outcomes,
        verify_errors=verify_errors,
    )


def _verify(entry, net, cycles, ok_outcomes, server_value) -> List[str]:
    """Cross-session and (optionally) against-simulator verification."""
    errors: List[str] = []
    # Sessions sharing an operand must be bit-identical to each other.
    by_value: Dict[int, SessionOutcome] = {}
    for o in ok_outcomes:
        first = by_value.setdefault(o.value, o)
        if first is not o:
            if o.outputs != first.outputs:
                errors.append(
                    f"{o.session}: outputs diverge from {first.session} "
                    f"for the same operand"
                )
            if o.garbled_nonxor != first.garbled_nonxor:
                errors.append(
                    f"{o.session}: gate count {o.garbled_nonxor} != "
                    f"{first.garbled_nonxor} ({first.session})"
                )
    if server_value is None:
        return errors
    # Full result check against the local plain run of the circuit.
    from .. import api

    expected: Dict[int, object] = {}
    for o in ok_outcomes:
        ref = expected.get(o.value)
        if ref is None:
            ref = api.run(
                net,
                {
                    "alice": entry.alice_source(server_value, cycles),
                    "bob": entry.bob_source(o.value, cycles),
                },
                mode="local",
                cycles=cycles,
            )
            expected[o.value] = ref
        if o.result_value != ref.value or o.outputs != list(ref.outputs):
            errors.append(
                f"{o.session}: decoded value {o.result_value} != "
                f"local reference {ref.value}"
            )
        if o.garbled_nonxor != ref.stats.garbled_nonxor:
            errors.append(
                f"{o.session}: gate count {o.garbled_nonxor} != local "
                f"reference {ref.stats.garbled_nonxor}"
            )
    return errors
