"""Bounded, TTL'd result replay buffer for the serve layer.

A client that dies *after* the garbler decoded its output — between
the final table batch and the output-decode exchange, or after the
result frame itself was lost in flight — used to lose the result
forever: the session is finished server-side, so a redial got an
``already finished`` reject and re-running the session would garble
fresh tables for no reason (and, for a keyed program, possibly against
rotated material).  Instead the server now *parks* the decoded result
of every finished session here, keyed by ``(session id, evaluator
identity)``, so a redial of a finished session is answered with a
``status: "result"`` welcome carrying the bit-identical output.

The buffer is deliberately small and forgetful:

* **Bounded** — at most ``capacity`` entries; inserting past that
  evicts the oldest entry first (insertion order, which under a
  uniform TTL is also expiry order).
* **TTL'd** — entries older than ``ttl`` seconds are dropped lazily on
  every park/fetch; an expired session answers with a structured
  ``unknown-session`` reject, never a stale result.
* **Identity-checked** — an entry parked for evaluator identity ``c``
  is only replayable by a hello presenting the same identity
  (``None`` matches ``None``: anonymous sessions replay for anonymous
  redials).  A mismatch is reported distinctly from a miss so the
  server can answer with an explicit denial instead of leaking whether
  the session existed... without ever serving another client's output.

``ttl <= 0`` disables the buffer entirely (``park`` is a no-op, every
``fetch`` misses), restoring the pre-replay ``already finished``
behaviour — used by tests and by deployments that consider any result
retention a liability.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


#: ``fetch`` outcomes — strings so they read well in counters/tests.
HIT = "hit"
MISS = "miss"
DENIED = "denied"


@dataclass
class ReplayEntry:
    """One parked result: the decoded output bits plus enough session
    metadata for the client to rebuild a ``SessionResult``."""

    session: str
    client: Optional[str]
    payload: Dict[str, Any]
    parked_at: float = field(default=0.0)


class ReplayBuffer:
    """Thread-safe bounded TTL map of finished-session results."""

    def __init__(
        self,
        ttl: float = 120.0,
        capacity: int = 256,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"replay capacity must be >= 1, got {capacity}")
        self.ttl = ttl
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, ReplayEntry]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.ttl > 0

    def __len__(self) -> int:
        with self._lock:
            self._expire_locked()
            return len(self._entries)

    def park(
        self,
        session: str,
        client: Optional[str],
        payload: Dict[str, Any],
    ) -> None:
        """Record the finished session's result (last write wins)."""
        if not self.enabled:
            return
        entry = ReplayEntry(
            session=session,
            client=client,
            payload=dict(payload),
            parked_at=self._clock(),
        )
        with self._lock:
            self._expire_locked()
            self._entries.pop(session, None)
            self._entries[session] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def fetch(
        self, session: str, client: Optional[str]
    ) -> Tuple[str, Optional[ReplayEntry]]:
        """Look up a parked result.

        Returns ``(HIT, entry)`` on an identity-matched hit,
        ``(DENIED, None)`` when the session is parked but for a
        different evaluator identity, and ``(MISS, None)`` when it was
        never parked or already expired.  Entries survive a hit — a
        flaky network may need the same result more than once within
        the TTL.
        """
        with self._lock:
            self._expire_locked()
            entry = self._entries.get(session)
            if entry is None:
                return MISS, None
            if entry.client != client:
                return DENIED, None
            return HIT, entry

    def _expire_locked(self) -> None:
        if not self.enabled:
            self._entries.clear()
            return
        horizon = self._clock() - self.ttl
        while self._entries:
            _, oldest = next(iter(self._entries.items()))
            if oldest.parked_at >= horizon:
                break
            self._entries.popitem(last=False)
