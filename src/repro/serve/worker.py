"""Serve worker process: one core, one pre-warmed plan per program.

``worker_main`` is the target of every process the
:class:`~repro.serve.server.GarbleServer` pool spawns (forkserver
context, so this module is importable and preloadable).  At spawn the
worker rebuilds each served program's compiled
:class:`~repro.core.plan.CyclePlan` — including the generated sweep —
in its *own* interpreter, so the first admitted session pays no
compile and the parent's plan cache is never shared across the process
boundary.

Control flow mirrors the thread pool, split across the process
boundary:

* a **reader thread** drains the parent's control channel
  (:class:`~repro.serve.ipc.MsgChannel`): ``run`` registers a session
  and enqueues it for the main loop, ``link`` adopts a passed-in
  socket fd (a fresh connect or a resume redial) and feeds it to the
  owning session's link queue, ``stop`` ends the worker after the
  current session;
* the **main loop** runs one
  :class:`~repro.net.session.ResumableSession` at a time around a
  :class:`~repro.core.protocol.GarblerParty`, exactly as the thread
  pool's ``_run_session`` does, and ships the outcome (record plus the
  pickled :class:`~repro.net.session.SessionResult`) back to the
  parent, which owns all session bookkeeping.

Only the ``active`` gauge lives in the shared-memory counter block —
the one number admission control needs *while* a session runs.
Terminal counters (``completed``/``failed``) are bumped by the parent
when it processes the outcome message, keeping counter and session
state transitions atomic under the parent's lock (a client that has
observed ``completed == n`` must see those n sessions as finished).

``SIGINT`` is ignored: a Ctrl-C against the CLI hits the whole
process group, and shutdown must flow through the parent's drain so
in-flight sessions finish.
"""

from __future__ import annotations

import queue
import signal
import socket
import threading
from time import perf_counter
from typing import Optional

from ..circuit.bits import bits_to_int
from ..core.plan import warm_plan
from ..core.protocol import GarblerParty, _expand_bits
from ..gc.material import MaterialCache, MaterialGarblerParty
from ..gc.ot_extension import OTExtensionSender, session_salt
from ..net.links import Link, LinkClosed, LinkTimeout, PrefacedLink
from ..net.session import ResumableSession, SessionHandoff, net_digest
from ..net.tcp import TcpLink
from ..obs import NULL_OBS
from .ipc import IpcClosed, MsgChannel

__all__ = ["STAT_FIELDS", "worker_main"]

#: Layout of the shared-memory counter block (one ``long`` per field).
#: Defined here — not in ``server`` — so the worker never imports the
#: server module (the parent imports the worker, not vice versa).
STAT_FIELDS = (
    "accepted",
    "rejected_busy",
    "rejected_error",
    "completed",
    "failed",
    "active",
    "stats_probes",
    "material_epochs",   # delta epochs garbled offline (prewarm + refill)
    "material_hits",     # sessions served from pre-garbled material
    "material_misses",   # sessions that garbled material synchronously
    "rejected_overload",  # connections refused at max_connections
    "handshake_rejects",  # malformed/truncated/oversized/timed-out hellos
    "handshake_timeouts",  # hellos that missed the handshake deadline
    "idle_timeouts",     # connections that never sent a byte in time
    "idle_shed",         # idle connections shed to admit newcomers
    "replay_hits",       # finished-session redials served from replay
    "replay_misses",     # redials whose result expired or never parked
    "handed_off",        # in-flight sessions transferred to a peer shard
    "adopted",           # sessions adopted from a draining peer shard
)

_IDX_ACTIVE = STAT_FIELDS.index("active")
_IDX_EPOCHS = STAT_FIELDS.index("material_epochs")
_IDX_HITS = STAT_FIELDS.index("material_hits")
_IDX_MISSES = STAT_FIELDS.index("material_misses")

_STOP = object()
_SEALED = object()


class _WorkerSession:
    """Worker-side link mailbox for one session (mirrors the parent's
    ``_ServeSession`` push/pop/seal semantics)."""

    __slots__ = ("id", "_links", "_lock", "_sealed", "handoff", "released")

    def __init__(self, sid: str) -> None:
        self.id = sid
        self._links: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._sealed = False
        #: Drain-time handoff request (set by a "handoff" control
        #: message); the session raises SessionHandoff at its next
        #: checkpoint boundary.
        self.handoff = threading.Event()
        #: Parent's acknowledgment that the adopting peer holds the
        #: bundle; only then may the evaluator's link be closed.
        self.released = threading.Event()

    def push_link(self, link: Link) -> bool:
        with self._lock:
            if self._sealed:
                return False
            self._links.put(link)
            return True

    def pop_link(self, timeout: Optional[float]) -> Link:
        try:
            item = self._links.get(timeout=timeout)
        except queue.Empty:
            raise LinkTimeout(
                f"session {self.id!r}: evaluator did not (re)connect "
                f"within {timeout}s"
            ) from None
        if item is _SEALED:
            self._links.put(item)  # later pops fail fast too
            raise LinkClosed(f"session {self.id!r} is sealed")
        return item

    def seal(self) -> None:
        with self._lock:
            self._sealed = True
            while True:
                try:
                    item = self._links.get_nowait()
                except queue.Empty:
                    break
                if item is not _SEALED:
                    item.close()
            # Wake (and permanently fail) any pop_link in flight so a
            # cancelled session never burns a full resume window.
            self._links.put(_SEALED)


def _bump_active(stats_block, n: int) -> None:
    with stats_block.get_lock():
        stats_block[_IDX_ACTIVE] += n


def _bump(stats_block, idx: int, n: int = 1) -> None:
    if n:
        with stats_block.get_lock():
            stats_block[idx] += n


def build_material_caches(programs: dict, config: dict) -> dict:
    """Offline phase: one :class:`MaterialCache` per served program,
    pre-garbled ``material_depth`` epochs deep.  Shared by the process
    worker (per-worker caches) and the thread pool (one shared cache,
    the class is thread-safe).  Returns ``{}`` when precompute is off.
    """
    if not config.get("precompute"):
        return {}
    materials = {}
    for name, prog in programs.items():
        materials[name] = MaterialCache(
            prog.net,
            prog.cycles,
            alice=prog.alice,
            alice_init=prog.alice_init,
            public=prog.public,
            public_init=prog.public_init,
            ot_group=config["ot_group"],
            ot=config["ot"],
            engine=config["engine"],
            depth=config.get("material_depth", 2),
        )
    return materials


def _sender_ot_factory(config: dict, sid: str, ot_base):
    """Garbler-side OT factory for one serve session: session-unique
    PRG salt always, cached base material when the handshake agreed."""
    if config["ot"] != "extension":
        return None
    salt = session_salt(sid)

    def factory(chan):
        return OTExtensionSender(
            chan, group=config["ot_group"], base=ot_base, salt=salt
        )

    return factory


def _reader_loop(chan: MsgChannel, runq: "queue.Queue", sessions: dict,
                 lock: threading.Lock) -> None:
    """Drain the control channel; orderable because run/link/stop for
    one worker ride one SOCK_STREAM channel."""
    while True:
        try:
            msg, fds = chan.recv()
        except IpcClosed:
            runq.put(_STOP)
            return
        mtype = msg.get("type")
        if mtype == "run":
            sid = msg["session"]
            sess = _WorkerSession(sid)
            with lock:
                sessions[sid] = sess
            runq.put((sid, msg))
        elif mtype == "link":
            if not fds:
                continue
            link: Link = TcpLink.from_fd(fds[0])
            preface = msg.get("preface", b"")
            if preface:
                link = PrefacedLink(link, preface)
            with lock:
                sess = sessions.get(msg["session"])
            if sess is None or not sess.push_link(link):
                # Finished (or never assigned here) between the
                # parent's routing decision and delivery: the redial
                # sees EOF and the evaluator re-resolves via a fresh
                # hello.
                link.close()
        elif mtype == "handoff":
            with lock:
                sess = sessions.get(msg["session"])
            if sess is not None:
                sess.handoff.set()
        elif mtype == "handoff-release":
            with lock:
                sess = sessions.get(msg["session"])
            if sess is not None:
                sess.released.set()
        elif mtype == "stop":
            runq.put(_STOP)
            return


def make_garbler_party(name: str, prog, config: dict, run_msg: dict,
                       materials: dict, obs=NULL_OBS):
    """Build the garbler party for one admitted session.

    With pre-garbled material available this is a
    :class:`MaterialGarblerParty` consuming one cached delta epoch
    (keyed to the client identity from the handshake — the cache
    enforces that an epoch is never handed to two identities);
    otherwise a fresh :class:`GarblerParty`.  Either way the OT factory
    applies the session salt and any cached base-OT material the
    parent negotiated into the ``run`` message.  Returns
    ``(party, material_hit)`` where ``material_hit`` is ``None`` for
    fresh garbling, else whether the pool had an epoch ready.
    """
    sid = run_msg["session"]
    client = run_msg.get("client")
    ot_factory = _sender_ot_factory(config, sid, run_msg.get("ot_base"))
    gkey = run_msg.get("garbler_key")
    if gkey is not None:
        # Per-session garbler inputs: the hello picked its operand out
        # of the program's keyed table.  Keyed sessions garble fresh —
        # recorded material transcripts bind the default operand, so
        # replaying one here would leak (and compute) the wrong input.
        party = GarblerParty(
            prog.net,
            prog.cycles,
            _expand_bits(prog.net, "alice", prog.alice_by_key[gkey],
                         prog.alice_init, prog.cycles),
            public=prog.public,
            public_init=prog.public_init,
            ot_group=config["ot_group"],
            ot=config["ot"],
            obs=obs,
            engine=config["engine"],
            ot_factory=ot_factory,
        )
        return party, None
    cache = materials.get(name)
    if cache is not None:
        material, hit = cache.acquire(client)
        party = MaterialGarblerParty(
            material,
            ot_group=config["ot_group"],
            ot=config["ot"],
            ot_factory=ot_factory,
            obs=obs,
        )
        return party, hit
    party = GarblerParty(
        prog.net,
        prog.cycles,
        _expand_bits(prog.net, "alice", prog.alice, prog.alice_init,
                     prog.cycles),
        public=prog.public,
        public_init=prog.public_init,
        ot_group=config["ot_group"],
        ot=config["ot"],
        obs=obs,
        engine=config["engine"],
        ot_factory=ot_factory,
    )
    return party, None


def make_adopted_party(prog, config: dict, run_msg: dict, obs=NULL_OBS):
    """Rebuild the garbler party for a session adopted from a draining
    peer shard.

    The handoff bundle carries the peer's :class:`GarbledMaterial`
    (its epoch must match the checkpoints — the epoch guard in
    ``MaterialGarblerParty.restore`` enforces it) plus the original
    OT negotiation, so the rebuilt party is wire-compatible with the
    evaluator mid-session: same material transcript, same session
    salt, same base-OT view.  ``resume=True`` suppresses the
    init-label replay the evaluator already received.
    """
    bundle = run_msg["bundle"]
    ot_factory = _sender_ot_factory(
        config, run_msg["session"], bundle.get("ot_base")
    )
    return MaterialGarblerParty(
        bundle["material"],
        ot_group=config["ot_group"],
        ot=config["ot"],
        ot_factory=ot_factory,
        obs=obs,
        resume=True,
    )


def handoff_bundle(party, run_msg: dict, checkpoints: dict,
                   cycle: int) -> Optional[dict]:
    """Everything the adopting shard needs to finish this session
    bit-identically, or ``None`` when the session cannot hand off
    (only material-backed sessions can: a fresh party's labels are
    bound to in-process state the peer cannot reconstruct)."""
    material = getattr(party, "material", None)
    if material is None:
        return None
    return {
        "session": run_msg["session"],
        "program": run_msg["program"],
        "client": run_msg.get("client"),
        "garbler_key": run_msg.get("garbler_key"),
        "ot_base": run_msg.get("ot_base"),
        "digest": net_digest(party.net, party.cycles),
        "cycle": cycle,
        "checkpoints": dict(checkpoints),
        "material": material,
    }


def replay_payload(result, party) -> Optional[dict]:
    """Build the replay-buffer payload for a finished session.

    Prefers the full :class:`~repro.net.session.SessionResult`; a
    session that *failed* after the garbler decoded outputs (the
    evaluator died between the result frame and its goodbye — exactly
    the window replay exists for) falls back to the party's
    ``last_outputs`` stash.  ``None`` when no outputs were ever
    decoded: there is nothing truthful to replay.
    """
    if result is not None:
        return {
            "outputs": [int(b) for b in result.outputs],
            "value": result.value,
            "garbled_nonxor": result.stats.garbled_nonxor,
            "tables_sent": (
                result.tables_sent if result.tables_sent is not None else -1
            ),
        }
    outputs = getattr(party, "last_outputs", None)
    if outputs is None:
        return None
    stats = getattr(getattr(party, "engine", None), "stats", None)
    backend = getattr(party, "backend", None)
    return {
        "outputs": [int(b) for b in outputs],
        "value": bits_to_int(outputs),
        "garbled_nonxor": getattr(stats, "garbled_nonxor", -1),
        "tables_sent": getattr(backend, "tables_sent", -1),
    }


def exportable_ot_base(party, config: dict, run_msg: dict):
    """Sender-side base-OT material worth caching: only when this
    session ran a *fresh* base phase (nothing cached was supplied)."""
    if config["ot"] != "extension" or run_msg.get("ot_base") is not None:
        return None
    ot = getattr(party.backend, "_ot", None)
    export = getattr(ot, "export_base", None)
    return export() if export is not None else None


def _ship_handoff(chan: MsgChannel, sess: _WorkerSession, session,
                  party, run_msg: dict, handoff: SessionHandoff,
                  wall: float, stats_block) -> None:
    """Ship the handoff bundle to the parent and hold the evaluator's
    link open until the parent confirms the peer adopted it.

    The order is the whole point: if the link closed first, the
    evaluator's instant redial could reach the peer *before* the
    bundle does and be admitted as a brand-new session — correct
    output, but a fork the later adoption would collide with.  The
    evaluator stays blocked on the open link until ``released``.
    """
    bundle = handoff_bundle(party, run_msg, handoff.checkpoints,
                            handoff.cycle)
    record = {
        "session": sess.id,
        "program": run_msg["program"],
        "state": "handed-off",
        "wall_ms": int(wall * 1000),
        "garbled_nonxor": -1,
        "tables_sent": -1,
        "reconnects": session.reconnects,
        "epoch": (
            party.material_epoch
            if getattr(party, "material_epoch", None) is not None else -1
        ),
        "cycle": handoff.cycle,
    }
    try:
        chan.send({"type": "handed-off", "session": sess.id,
                   "record": record, "wall": wall, "bundle": bundle})
        sess.released.wait(timeout=60.0)
    except IpcClosed:
        pass  # parent gone; close out locally
    session.close()
    sess.seal()
    _bump_active(stats_block, -1)


def _run_one(chan: MsgChannel, sess: _WorkerSession, run_msg: dict,
             programs: dict, config: dict, stats_block,
             materials: dict) -> None:
    """One session end-to-end; mirrors the thread pool's
    ``_run_session`` including its exception semantics: ``Exception``
    fails the session, ``KeyboardInterrupt``/``SystemExit`` fail it
    *and* propagate so interpreter shutdown is never swallowed."""
    _bump_active(stats_block, 1)
    t0 = perf_counter()
    name = run_msg["program"]
    result = None
    error: Optional[BaseException] = None
    reraise: Optional[BaseException] = None
    handoff: Optional[SessionHandoff] = None
    adopt = run_msg.get("bundle")
    if adopt is not None:
        party, material_hit = make_adopted_party(
            programs[name], config, run_msg
        ), None
    else:
        party, material_hit = make_garbler_party(
            name, programs[name], config, run_msg, materials
        )
    if material_hit is not None:
        _bump(stats_block, _IDX_HITS if material_hit else _IDX_MISSES)
        if not material_hit:
            _bump(stats_block, _IDX_EPOCHS)
    # Only material-backed sessions can hand off (a fresh party's
    # labels are bound to in-process state); leave the interrupt
    # unarmed otherwise and the session finishes here during drain.
    can_handoff = getattr(party, "material", None) is not None
    session = ResumableSession(
        party,
        connect=lambda: sess.pop_link(config["resume_window"]),
        checkpoint_every=config["checkpoint_every"],
        timeout=config["timeout"],
        max_attempts=config["max_attempts"],
        heartbeat_interval=config["heartbeat"],
        interrupt=sess.handoff.is_set if can_handoff else None,
        checkpoints=adopt["checkpoints"] if adopt is not None else None,
        obs=NULL_OBS,
    )
    try:
        result = session.run()
    except SessionHandoff as exc:
        handoff = exc
    except Exception as exc:
        error = exc
    except BaseException as exc:
        error = exc
        reraise = exc
    finally:
        wall = perf_counter() - t0
        if handoff is not None:
            _ship_handoff(chan, sess, session, party, run_msg, handoff,
                          wall, stats_block)
            return
        sess.seal()
        _bump_active(stats_block, -1)
        state = "done" if error is None else "failed"
        record = {
            "session": sess.id,
            "program": name,
            "state": state,
            "wall_ms": int(wall * 1000),
            "garbled_nonxor": (
                result.stats.garbled_nonxor if result is not None else -1
            ),
            "tables_sent": (
                result.tables_sent
                if result is not None and result.tables_sent is not None
                else -1
            ),
            "reconnects": result.reconnects if result is not None else -1,
            "epoch": (
                result.material_epoch
                if result is not None and result.material_epoch is not None
                else -1
            ),
        }
        msg = {"type": state, "session": sess.id, "record": record,
               "wall": wall}
        if result is not None:
            msg["result"] = result
        replay = replay_payload(result, party)
        if replay is not None:
            msg["replay"] = replay
        if error is None:
            base = exportable_ot_base(party, config, run_msg)
            if base is not None:
                msg["ot_base_export"] = base
        if error is not None:
            msg["error"] = f"{type(error).__name__}: {error}"
        try:
            chan.send(msg)
        except IpcClosed:
            pass  # parent gone; nothing left to report to
    # Top the material pool back up *after* the outcome shipped: the
    # refill is the offline phase running between sessions, never on a
    # reporting path the client is waiting on.
    cache = materials.get(name)
    if cache is not None:
        _bump(stats_block, _IDX_EPOCHS, cache.refill())
    if reraise is not None:
        raise reraise


def worker_main(index: int, sock: socket.socket, stats_block,
                programs: dict, config: dict) -> None:
    """Entry point of one pool process (must be module-level so the
    forkserver can pickle the target by reference)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    chan = MsgChannel(sock)
    # Pre-warm: one compiled plan (and generated sweep) per served
    # program, in this process's own cache.
    if config["engine"] == "compiled":
        for prog in programs.values():
            warm_plan(prog.net)
    # Offline phase: pre-garble material_depth delta epochs per program
    # before signalling ready, so the first admitted session is already
    # pure replay.
    materials = build_material_caches(programs, config)
    for cache in materials.values():
        _bump(stats_block, _IDX_EPOCHS, cache.prewarm())
    runq: "queue.Queue" = queue.Queue()
    sessions: dict = {}
    lock = threading.Lock()
    reader = threading.Thread(
        target=_reader_loop, args=(chan, runq, sessions, lock),
        name=f"serve-worker-{index}-reader", daemon=True,
    )
    reader.start()
    try:
        chan.send({"type": "ready", "index": index})
    except IpcClosed:
        return
    try:
        while True:
            item = runq.get()
            if item is _STOP:
                return
            sid, run_msg = item
            with lock:
                sess = sessions[sid]
            try:
                _run_one(chan, sess, run_msg, programs, config,
                         stats_block, materials)
            finally:
                with lock:
                    sessions.pop(sid, None)
    finally:
        chan.close()
