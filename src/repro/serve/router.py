"""Digest-affinity session router for a sharded serve fleet.

:class:`SessionRouter` is a lightweight asyncio tier that fronts N
independent :class:`~repro.serve.server.GarbleServer` shards.  It
terminates the ``serve-hello`` (reusing the edge's incremental
:class:`~repro.serve.handshake.HelloParser` and reject vocabulary),
decides where the session lives, and from then on is a dumb byte
splice — all protocol traffic flows through untouched, so the
cryptographic transcript between evaluator and garbler is exactly what
it would be point-to-point.

Routing policy:

* **Session affinity** — a hello naming a known session id routes to
  the shard already pinned for it (a bounded FIFO table), so redials
  and result probes find their worker.
* **Digest affinity** — a fresh session routes by rendezvous (HRW)
  hashing over the live, non-draining shard set, keyed by the
  *program digest* learned from shard stats polls (falling back to the
  program name before the first poll lands).  This is the same
  :func:`~repro.serve.fleet.rendezvous_select` a draining shard uses
  to pick adoption peers, so router routing and drain-time handoff
  agree without coordination; and because HRW moves only the keys a
  leaving shard owned, shard churn re-routes the minimum.
* **Health / backpressure** — a background task polls every shard's
  ``op: "stats"`` on ``poll_interval``; ``dead_after`` consecutive
  failures mark a shard dead (routed around until it answers again),
  and a draining shard stops receiving fresh sessions immediately.
  With no live shard the router answers the fleet-level structured
  ``busy`` reject with ``retry_after_s`` backoff guidance.
* **Fleet ops** — ``op: "fleet-stats"`` probes every shard live and
  answers the aggregated fleet view; ``op: "drain"`` tells one shard
  (named in the hello) to drain, handing it the rest of the live fleet
  as adoption peers, and relays the shard's answer.

The router holds no session state beyond the pin table: kill it and
restart it, and reconnects re-pin via rendezvous (same digest, same
shard) or the shard's ``moved`` redirect.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from time import monotonic
from typing import Dict, List, Optional, Tuple

from ..gc.channel import FrameCorruption
from ..net.codec import decode, encode
from ..net.frame import FRAME_DATA, FrameDecoder, encode_frame
from ..obs import NULL_OBS
from .config import RouterConfig
from .fleet import aggregate_shard_stats, rendezvous_select
from .handshake import HELLO, WELCOME, HandshakeReject, HelloParser

#: Router-side counters (reported by ``op: "stats"``).
ROUTER_COUNTERS = (
    "routed_sessions",
    "routed_results",
    "rejected_busy",
    "rejected_error",
    "handshake_rejects",
    "stats_probes",
    "fleet_probes",
    "drains",
    "shard_reloads",
    "poll_errors",
    "moved_pins",
)


def _frame(tag: str, payload) -> bytes:
    return encode_frame(FRAME_DATA, 1, tag, encode(payload))


class _ShardState:
    """Router-side view of one shard, updated by the poll task."""

    __slots__ = ("addr", "healthy", "draining", "fails", "snapshot",
                 "digests", "polled_at")

    def __init__(self, addr: Tuple[str, int]) -> None:
        self.addr = addr
        #: Optimistic until proven dead: the fleet must route before
        #: the first poll round completes.
        self.healthy = True
        self.draining = False
        self.fails = 0
        self.snapshot: Optional[dict] = None
        self.digests: Dict[str, str] = {}
        self.polled_at = 0.0

    @property
    def id(self) -> str:
        return "%s:%d" % self.addr

    def describe(self) -> dict:
        return {
            "id": self.id,
            "healthy": self.healthy,
            "draining": self.draining,
            "stats": self.snapshot,
        }


class _Splice(asyncio.Protocol):
    """Upstream half of a proxied session: bytes from the shard go to
    the client, with write-pressure propagated both ways."""

    def __init__(self, router: "SessionRouter") -> None:
        self.router = router
        self.transport = None
        self.peer = None  # the client-side transport

    def connection_made(self, transport) -> None:
        self.transport = transport

    def data_received(self, data: bytes) -> None:
        if self.peer is not None and not self.peer.is_closing():
            self.peer.write(data)

    def pause_writing(self) -> None:
        if self.peer is not None:
            try:
                self.peer.pause_reading()
            except RuntimeError:
                pass

    def resume_writing(self) -> None:
        if self.peer is not None:
            try:
                self.peer.resume_reading()
            except RuntimeError:
                pass

    def connection_lost(self, exc) -> None:
        if self.peer is not None and not self.peer.is_closing():
            self.peer.close()


class _ClientConn(asyncio.Protocol):
    """One downstream connection: hello parsing, then either a local
    control answer or a splice to the routed shard."""

    def __init__(self, router: "SessionRouter") -> None:
        self.router = router
        self._parser = HelloParser(max_bytes=router.config.max_hello_bytes)
        self.transport = None
        self._timer: Optional[asyncio.TimerHandle] = None
        self._upstream: Optional[_Splice] = None
        self._task: Optional[asyncio.Task] = None
        self.state = "hello"

    # -- lifecycle ----------------------------------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        router = self.router
        if len(router._conns) >= router.config.max_connections:
            self._reject({"status": "overloaded",
                          "reason": "router connection table is full",
                          "retry_after_s": router._retry_after(True)},
                         counter="rejected_busy")
            return
        router._conns[self] = None
        self._arm(router.config.idle_timeout)

    def connection_lost(self, exc) -> None:
        self._cancel_timer()
        self.router._conns.pop(self, None)
        if self._task is not None:
            self._task.cancel()
        if self._upstream is not None:
            up = self._upstream.transport
            if up is not None and not up.is_closing():
                up.close()

    def data_received(self, data: bytes) -> None:
        if self.state == "splice":
            up = self._upstream.transport if self._upstream else None
            if up is not None and not up.is_closing():
                up.write(data)
            return
        if self.state != "hello":
            return
        self._arm(self.router.config.handshake_timeout)
        try:
            done = self._parser.feed(data)
        except HandshakeReject as exc:
            self.router.bump("handshake_rejects")
            self._reject({"status": "bad-hello", "error": exc.kind,
                          "reason": exc.reason}, counter=None)
            return
        if done is None:
            return
        hello, leftover = done
        self.state = "routing"
        self._cancel_timer()
        self._task = self.router.loop.create_task(
            self._route(hello, leftover)
        )

    # -- write-pressure from the client side --------------------------

    def pause_writing(self) -> None:
        if self._upstream is not None and self._upstream.transport:
            try:
                self._upstream.transport.pause_reading()
            except RuntimeError:
                pass

    def resume_writing(self) -> None:
        if self._upstream is not None and self._upstream.transport:
            try:
                self._upstream.transport.resume_reading()
            except RuntimeError:
                pass

    # -- deadlines ----------------------------------------------------

    def _arm(self, timeout: Optional[float]) -> None:
        self._cancel_timer()
        if timeout is not None and timeout > 0:
            self._timer = self.router.loop.call_later(
                timeout, self._on_deadline
            )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_deadline(self) -> None:
        self.router.bump("handshake_rejects")
        self._reject({"status": "handshake-timeout",
                      "reason": "hello incomplete at the deadline"},
                     counter=None)

    # -- replies ------------------------------------------------------

    def _reject(self, payload: dict, counter: Optional[str]) -> None:
        if counter is not None:
            self.router.bump(counter)
        self.state = "closed"
        self._cancel_timer()
        t = self.transport
        if t is not None and not t.is_closing():
            try:
                t.write(_frame(WELCOME, payload))
            except OSError:
                pass
            t.close()

    def _answer(self, payload: dict) -> None:
        self.state = "closed"
        t = self.transport
        if t is not None and not t.is_closing():
            try:
                t.write(_frame(WELCOME, payload))
            except OSError:
                pass
            t.close()

    # -- routing ------------------------------------------------------

    async def _route(self, hello: dict, leftover: bytes) -> None:
        router = self.router
        try:
            op = hello.get("op", "session")
            if op == "stats":
                router.bump("stats_probes")
                self._answer({"status": "stats",
                              "stats": router.stats_snapshot()})
                return
            if op == "fleet-stats":
                router.bump("fleet_probes")
                self._answer({"status": "fleet-stats",
                              **(await router.fleet_stats())})
                return
            if op == "drain":
                router.bump("drains")
                self._answer(await router.start_drain(hello))
                return
            if op == "reload-shards":
                self._answer(await router.reload_shards(hello))
                return
            sid = hello.get("session")
            if not isinstance(sid, str) or not sid:
                self._reject({"status": "error",
                              "reason": "hello carries no session id"},
                             counter="rejected_error")
                return
            shard = router.route(sid, hello)
            if shard is None:
                self._reject(
                    {"status": "busy",
                     "reason": "no live shard can take this session",
                     "retry_after_s": router._retry_after(True)},
                    counter="rejected_busy",
                )
                return
            try:
                await self._splice_to(shard, hello, leftover)
            except (OSError, asyncio.TimeoutError):
                router.unpin(sid, shard.addr)
                self._reject(
                    {"status": "busy",
                     "reason": f"shard {shard.id} is unreachable",
                     "retry_after_s": router._retry_after(True)},
                    counter="rejected_busy",
                )
                return
            router._streak = 0
            router.bump("routed_results" if op == "result"
                        else "routed_sessions")
        except asyncio.CancelledError:
            raise
        except Exception:
            self._reject({"status": "error",
                          "reason": "router internal error"},
                         counter="rejected_error")

    async def _splice_to(self, shard: _ShardState, hello: dict,
                         leftover: bytes) -> None:
        router = self.router
        self.transport.pause_reading()
        upstream = _Splice(router)
        await asyncio.wait_for(
            router.loop.create_connection(
                lambda: upstream, shard.addr[0], shard.addr[1]
            ),
            timeout=router.config.connect_timeout,
        )
        upstream.peer = self.transport
        self._upstream = upstream
        # Replay the hello verbatim (the shard re-terminates it) plus
        # any bytes of the next frame the parser already consumed.
        upstream.transport.write(_frame(HELLO, hello) + leftover)
        self.state = "splice"
        try:
            self.transport.resume_reading()
        except RuntimeError:
            pass


class SessionRouter:
    """Asyncio router fronting a fleet of garbling shards."""

    def __init__(self, config: RouterConfig, obs=NULL_OBS) -> None:
        if not config.shards:
            raise ValueError("a router needs at least one shard")
        self.config = config
        self.obs = obs
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.shards: List[_ShardState] = [
            _ShardState((str(h), int(p))) for h, p in config.shards
        ]
        self._by_addr = {s.addr: s for s in self.shards}
        #: sid -> shard addr, bounded FIFO (dict preserves insertion
        #: order; the oldest pin is evicted at capacity).
        self._pins: Dict[str, Tuple[str, int]] = {}
        self._counters = {name: 0 for name in ROUTER_COUNTERS}
        self._counter_lock = threading.Lock()
        self._conns: Dict[_ClientConn, None] = {}
        self._streak = 0
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((config.host, config.port))
        sock.listen(512)
        sock.setblocking(False)
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop_requested = threading.Event()
        self._stopped = False
        self._poll_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SessionRouter":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-router", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self.loop = loop
        try:
            self._server = loop.run_until_complete(
                loop.create_server(lambda: _ClientConn(self),
                                   sock=self._sock)
            )
            # One blocking poll round before announcing readiness:
            # routing prefers the program digest, and the digest map
            # comes from shard stats — without this, the first
            # sessions race the first poll and fall back to routing
            # by program name, which may hash to a different shard.
            loop.run_until_complete(self._poll_round())
            self._poll_task = loop.create_task(self._poll_loop())
            self._ready.set()
            loop.run_forever()
            self._poll_task.cancel()
            for conn in list(self._conns):
                if conn.transport is not None:
                    conn.transport.close()
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            self._ready.set()
            loop.close()

    def shutdown(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._stop_requested.set()
        loop = self.loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        else:
            self._sock.close()

    def request_shutdown(self) -> None:
        """Signal-handler-safe: ask :meth:`serve_forever` to return."""
        self._stop_requested.set()

    def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown` (or ``shutdown``)."""
        self._stop_requested.wait()
        self.shutdown()

    def __enter__(self) -> "SessionRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- counters -----------------------------------------------------

    def bump(self, name: str, n: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += n
        if self.obs.enabled:
            self.obs.inc(f"router.{name}", n)

    def _retry_after(self, pressure: bool) -> float:
        if pressure:
            self._streak = min(self._streak + 1, 7)
        return round(min(5.0, 0.1 * (2 ** self._streak)), 3)

    def stats_snapshot(self) -> dict:
        with self._counter_lock:
            snap = dict(self._counters)
        snap.update(
            shards=[s.describe() for s in self.shards],
            pinned_sessions=len(self._pins),
            open_connections=len(self._conns),
            config=self.config.to_dict(),
        )
        return snap

    # -- routing policy -----------------------------------------------

    def _live(self, fresh: bool) -> List[Tuple[str, int]]:
        """Shard addresses eligible for routing; ``fresh`` excludes
        draining shards (they reject new sessions but must still see
        redials of the sessions they hold)."""
        return [
            s.addr for s in self.shards
            if s.healthy and not (fresh and s.draining)
        ]

    def _digest_for(self, program: Optional[str]) -> Optional[str]:
        if not isinstance(program, str):
            return None
        for s in self.shards:
            d = s.digests.get(program)
            if d:
                return d
        return None

    def route(self, sid: str, hello: dict) -> Optional[_ShardState]:
        """Pick the shard for this hello (loop thread only)."""
        pinned = self._pins.get(sid)
        if pinned is not None:
            shard = self._by_addr.get(pinned)
            if shard is not None and shard.healthy:
                return shard
        fresh = hello.get("op", "session") == "session" and pinned is None
        live = self._live(fresh=fresh)
        if not live:
            return None
        key = self._digest_for(hello.get("program")) \
            or hello.get("program") or sid
        if not isinstance(key, str):
            key = sid
        addr = rendezvous_select(key, live)
        if addr is None:
            return None
        self.pin(sid, addr)
        return self._by_addr[addr]

    def pin(self, sid: str, addr: Tuple[str, int]) -> None:
        pins = self._pins
        pins.pop(sid, None)
        pins[sid] = addr
        while len(pins) > self.config.route_table_size:
            pins.pop(next(iter(pins)))

    def unpin(self, sid: str, addr: Tuple[str, int]) -> None:
        if self._pins.get(sid) == addr:
            self._pins.pop(sid, None)

    # -- shard control probes -----------------------------------------

    async def _probe(self, addr: Tuple[str, int], hello: dict,
                     timeout: Optional[float] = None) -> dict:
        """One async hello/welcome exchange against a shard."""
        timeout = timeout or self.config.connect_timeout
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(addr[0], addr[1]), timeout=timeout
        )
        try:
            writer.write(_frame(HELLO, hello))
            await asyncio.wait_for(writer.drain(), timeout=timeout)
            decoder = FrameDecoder()
            deadline = monotonic() + max(timeout, 5.0)
            while True:
                chunk = await asyncio.wait_for(
                    reader.read(65536),
                    timeout=max(deadline - monotonic(), 0.01),
                )
                if not chunk:
                    raise OSError("shard closed during probe")
                for frame in decoder.feed(chunk):
                    if frame.ftype != FRAME_DATA or frame.tag != WELCOME:
                        continue  # heartbeats / stray frames
                    payload = decode(frame.payload)
                    if isinstance(payload, dict):
                        return payload
                    raise OSError("malformed welcome from shard")
        finally:
            writer.close()

    async def _poll_shard(self, shard: _ShardState) -> None:
        try:
            welcome = await self._probe(shard.addr, {"op": "stats"})
            stats = welcome.get("stats")
            if welcome.get("status") != "stats" \
                    or not isinstance(stats, dict):
                raise OSError(f"bad stats reply from {shard.id}")
        except (OSError, asyncio.TimeoutError, ValueError,
                FrameCorruption):
            shard.fails += 1
            self.bump("poll_errors")
            if shard.fails >= self.config.dead_after:
                shard.healthy = False
            return
        shard.fails = 0
        shard.healthy = True
        shard.draining = bool(stats.get("draining"))
        shard.snapshot = stats
        digests = stats.get("program_digests")
        if isinstance(digests, dict):
            shard.digests = {str(k): str(v) for k, v in digests.items()}
        shard.polled_at = monotonic()

    async def _poll_round(self) -> None:
        await asyncio.gather(*(self._poll_shard(s) for s in self.shards))

    async def _poll_loop(self) -> None:
        while True:
            await self._poll_round()
            await asyncio.sleep(self.config.poll_interval)

    async def fleet_stats(self) -> dict:
        """Live fleet aggregate: probe every shard now (a dead shard
        contributes its health flag and no stats)."""
        await asyncio.gather(*(self._poll_shard(s) for s in self.shards))
        members = [s.describe() for s in self.shards]
        snapshots = [s.snapshot for s in self.shards
                     if s.healthy and s.snapshot is not None]
        return {
            "router": self.stats_snapshot(),
            "shards": members,
            "aggregate": aggregate_shard_stats(snapshots),
        }

    async def start_drain(self, hello: dict) -> dict:
        """``op: "drain"``: drain the named shard, giving it the rest
        of the live fleet as adoption peers."""
        target = hello.get("shard")
        try:
            addr = (str(target[0]), int(target[1]))
        except (TypeError, ValueError, IndexError):
            self.bump("rejected_error")
            return {"status": "error",
                    "reason": "drain needs a shard: [host, port]"}
        shard = self._by_addr.get(addr)
        if shard is None:
            self.bump("rejected_error")
            return {"status": "error",
                    "reason": f"unknown shard {target!r}",
                    "shards": [list(s.addr) for s in self.shards]}
        peers = [list(s.addr) for s in self.shards
                 if s.addr != addr and s.healthy and not s.draining]
        # Mark draining immediately: fresh sessions must stop landing
        # on this shard even before the next poll confirms.
        shard.draining = True
        try:
            welcome = await self._probe(
                addr, {"op": "drain", "peers": peers}
            )
        except (OSError, asyncio.TimeoutError, FrameCorruption):
            return {"status": "error",
                    "reason": f"shard {shard.id} did not answer the "
                              "drain"}
        return welcome

    async def reload_shards(self, hello: dict) -> dict:
        """``op: "reload-shards"``: swap shard membership live.

        The hello's ``shards`` list is the complete new membership.
        Disruption is minimal by construction: surviving shards keep
        their :class:`_ShardState` (health, digest map, snapshot) and
        their pins, so sessions routed to them stay put; HRW hashing
        guarantees a key only ever *moves to a joiner*, never between
        survivors.  Pins to departed shards are dropped — those
        sessions re-route on their next dial (the departed shard is
        expected to be drained first; see ``op: "drain"``).  Joiners
        are polled before the reply so the digest map covers them
        immediately.
        """
        raw = hello.get("shards")
        try:
            addrs = [(str(h), int(p)) for h, p in raw]
        except (TypeError, ValueError):
            self.bump("rejected_error")
            return {"status": "error",
                    "reason": "reload-shards needs shards: "
                              "[[host, port], ...]"}
        seen: set = set()
        addrs = [a for a in addrs
                 if not (a in seen or seen.add(a))]
        if not addrs:
            self.bump("rejected_error")
            return {"status": "error",
                    "reason": "reload-shards needs at least one shard"}
        current = {s.addr for s in self.shards}
        added = [a for a in addrs if a not in current]
        removed = sorted(current - set(addrs))
        states = [self._by_addr.get(a) or _ShardState(a) for a in addrs]
        self.shards = states
        self._by_addr = {s.addr: s for s in states}
        gone = set(removed)
        dropped = [sid for sid, addr in self._pins.items()
                   if addr in gone]
        for sid in dropped:
            self._pins.pop(sid, None)
        # Keep the config echo (stats_snapshot) truthful about the
        # membership now in force.
        self.config = self.config.replace(shards=tuple(addrs))
        joiners = [s for s in states if s.polled_at == 0.0]
        if joiners:
            await asyncio.gather(
                *(self._poll_shard(s) for s in joiners)
            )
        self.bump("shard_reloads")
        return {
            "status": "ok",
            "shards": [list(a) for a in addrs],
            "added": len(added),
            "removed": len(removed),
            "dropped_pins": len(dropped),
        }
