"""Evaluator-side client of a :class:`~repro.serve.server.GarbleServer`.

:func:`run_session` runs one full evaluator session against a serving
garbler: dial, ``serve-hello`` handshake (program + session id), then
the ordinary resumable protocol session.  The server's welcome is
authoritative for the cycle count and checkpoint cadence, so a client
only needs the circuit structure (for the digest handshake) and its
own private bits.  On a dropped connection the session redials the
*same* server with the *same* session id; the server routes the fresh
link to the live worker and both sides resume from the last common
checkpoint.

A client that names itself (``client_id=``) opts into **base-OT
reuse**: after its first successful ``ot="extension"`` session the
receiver-side base-OT seeds are cached per ``(host, port, client_id)``,
the next hello advertises them (``"base_ot": True``), and a server
still holding the matching sender side answers ``"base_ot": "cached"``
— both sides then skip the kappa base DH OTs and re-derive fresh
extension pools under a session-unique PRG salt.  Any disagreement
degrades to a fresh base phase, never to a protocol error.

:func:`fetch_stats` is the one-shot stats probe
(``op: "stats"`` hello), used by the CLI and the load generator.

**Result recovery.**  A client that dies after the final frame — the
garbler decoded the output but the result never made it home — simply
redials with the same session id: the server answers a redial of a
finished session with a ``status: "result"`` welcome replayed from its
bounded TTL'd buffer, and :func:`run_session` returns the recovered
:class:`~repro.net.session.SessionResult` (``replayed=True``)
bit-identically.  :func:`recover_result` asks for the parked result
explicitly (``op: "result"``) without ever joining the session.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Callable, Optional, Sequence, Union

from ..circuit.netlist import Netlist
from ..core.protocol import EvaluatorParty, _expand_bits
from ..gc.channel import ChannelStats
from ..gc.ot_extension import OTExtensionReceiver, session_salt
from ..net.links import Link, PrefacedLink
from ..net.session import ResumableSession, SessionResult
from ..net.tcp import connect_with_backoff
from ..obs import NULL_OBS
from .handshake import (
    HELLO,
    WELCOME,
    ResultPending,
    ServeError,
    ServerBusy,
    recv_control,
    send_control,
)

BitSource = Union[Sequence[int], Callable[[int], Sequence[int]]]

#: Receiver-side base-OT seeds by (host, port, client_id).  Process
#: local by design: the seeds are secret key material, so they never
#: leave the process that ran the base phase.
_RECEIVER_BASES: dict = {}
_RECEIVER_BASES_LOCK = threading.Lock()


def _cached_receiver_base(key):
    with _RECEIVER_BASES_LOCK:
        return _RECEIVER_BASES.get(key)


def _store_receiver_base(key, base) -> None:
    if base is None:
        return
    with _RECEIVER_BASES_LOCK:
        _RECEIVER_BASES[key] = base


def forget_receiver_bases() -> None:
    """Drop every cached receiver base (tests and key-rotation)."""
    with _RECEIVER_BASES_LOCK:
        _RECEIVER_BASES.clear()


def _hello_exchange(
    host: str,
    port: int,
    hello: dict,
    timeout: Optional[float],
    dial_attempts: int = 8,
) -> tuple:
    """Dial, send one hello, read one welcome.

    Returns ``(welcome, link)`` where ``link`` preserves any
    already-read bytes of the server's next frame.  Raises
    :class:`ServerBusy` / :class:`ServeError` on structured rejects.
    """
    link = connect_with_backoff(
        host, port, attempts=dial_attempts,
        connect_timeout=5.0 if timeout is None else timeout,
    )
    try:
        send_control(link, HELLO, hello)
        tag, welcome, leftover = recv_control(link, timeout=timeout)
    except BaseException:
        link.close()
        raise
    if tag != WELCOME or not isinstance(welcome, dict):
        link.close()
        raise ServeError(f"expected {WELCOME!r}, got {tag!r}")
    status = welcome.get("status")
    if status in ("busy", "draining"):
        link.close()
        raise ServerBusy(
            f"server rejected session: {welcome.get('reason', status)}",
            welcome=welcome,
        )
    if status not in ("ok", "stats", "fleet-stats", "result", "pending",
                      "moved"):
        link.close()
        raise ServeError(
            f"server rejected session: {welcome.get('reason', status)}"
        )
    return welcome, PrefacedLink(link, leftover)


def _exchange_follow_moved(
    target: dict,
    hello: dict,
    timeout: Optional[float],
    max_hops: int = 4,
) -> tuple:
    """Dial ``target`` (a mutable ``{"host", "port"}`` dict), following
    ``moved`` redirects.

    A ``moved`` welcome is how a draining shard redirects to the peer
    that adopted the session (drain-time handoff); the target is
    rewritten in place so every subsequent redial of this session goes
    straight to the adopting shard.
    """
    for _hop in range(max_hops):
        welcome, link = _hello_exchange(
            target["host"], target["port"], hello, timeout=timeout
        )
        if welcome.get("status") != "moved":
            return welcome, link
        link.close()
        peer = welcome.get("peer")
        try:
            target["host"], target["port"] = str(peer[0]), int(peer[1])
        except (TypeError, ValueError, IndexError):
            raise ServeError(
                f"malformed moved redirect: {welcome!r}"
            ) from None
    raise ServeError(
        f"session {hello.get('session')!r}: too many moved redirects"
    )


class _Replayed(Exception):
    """Internal: the server answered a (re)dial with a parked result
    instead of a live session."""

    def __init__(self, welcome: dict) -> None:
        super().__init__("session result served from replay")
        self.welcome = welcome


class _ReplayStats:
    """Stats shim carried by a replayed result (the protocol did not
    run on this connection, so there are no live RunStats)."""

    def __init__(self, garbled_nonxor: int) -> None:
        self.garbled_nonxor = garbled_nonxor


def _result_from_welcome(welcome: dict) -> SessionResult:
    return SessionResult(
        outputs=[int(b) for b in welcome.get("outputs", ())],
        value=welcome.get("value", 0),
        stats=_ReplayStats(welcome.get("garbled_nonxor", -1)),
        sent=ChannelStats(),
        received=ChannelStats(),
        reconnects=0,
        checkpoint_cycles=[],
        tables_sent=welcome.get("tables_sent"),
        material_epoch=None,
        replayed=True,
    )


def recover_result(
    host: str,
    port: int,
    session_id: str,
    *,
    client_id: Optional[str] = None,
    timeout: Optional[float] = 5.0,
    attempts: int = 4,
) -> SessionResult:
    """Fetch the parked result of a finished session.

    Sends an ``op: "result"`` hello; the session itself is never
    joined or re-run.  A ``pending`` answer (session still running) is
    retried up to ``attempts`` times honouring the server's
    ``retry_after_s`` guidance, then raises :class:`ResultPending`.
    An expired or never-parked result raises :class:`ServeError`
    (the server's structured ``unknown-session`` reject).
    """
    hello = {"op": "result", "session": session_id}
    if client_id:
        hello["client"] = client_id
    welcome: dict = {}
    target = {"host": host, "port": port}
    for i in range(max(attempts, 1)):
        welcome, link = _exchange_follow_moved(target, hello,
                                               timeout=timeout)
        link.close()
        status = welcome.get("status")
        if status == "result":
            return _result_from_welcome(welcome)
        if status != "pending":
            raise ServeError(f"unexpected result-probe reply: {welcome!r}")
        if i < attempts - 1:
            time.sleep(min(float(welcome.get("retry_after_s", 0.1)), 2.0))
    raise ResultPending(
        f"session {session_id!r} still running after {attempts} probes",
        welcome=welcome,
    )


def fetch_stats(host: str, port: int, timeout: Optional[float] = 5.0) -> dict:
    """One-shot ``stats`` control probe against a running server."""
    welcome, link = _hello_exchange(
        host, port, {"op": "stats"}, timeout=timeout
    )
    link.close()
    if welcome.get("status") != "stats":
        raise ServeError(f"unexpected stats reply: {welcome!r}")
    return welcome["stats"]


def fetch_fleet_stats(
    host: str, port: int, timeout: Optional[float] = 5.0
) -> dict:
    """One-shot ``fleet-stats`` probe: the aggregated fleet view.

    Against a router this probes every shard live; against a single
    shard it answers the same shape with that shard as the only
    member.  Returns ``{"router", "shards", "aggregate"}``.
    """
    welcome, link = _hello_exchange(
        host, port, {"op": "fleet-stats"}, timeout=timeout
    )
    link.close()
    if welcome.get("status") != "fleet-stats":
        raise ServeError(f"unexpected fleet-stats reply: {welcome!r}")
    return {k: welcome.get(k) for k in ("router", "shards", "aggregate")}


def request_drain(
    host: str,
    port: int,
    *,
    shard: Optional[tuple] = None,
    peers: Sequence[tuple] = (),
    timeout: Optional[float] = 10.0,
) -> dict:
    """Ask a fleet member to drain with session handoff.

    Against a **router**, name the ``shard`` to drain — the router
    hands it the rest of the live fleet as adoption peers.  Against a
    **shard** directly, pass the adoption ``peers`` yourself.  Returns
    the drain welcome (``{"status": "ok", "draining": True,
    "handoffs": n}`` on success).
    """
    hello: dict = {"op": "drain"}
    if shard is not None:
        hello["shard"] = [str(shard[0]), int(shard[1])]
    if peers:
        hello["peers"] = [[str(h), int(p)] for h, p in peers]
    welcome, link = _hello_exchange(host, port, hello, timeout=timeout)
    link.close()
    if welcome.get("status") != "ok":
        raise ServeError(f"drain rejected: {welcome!r}")
    return welcome


def request_reload(
    host: str,
    port: int,
    shards: Sequence[tuple],
    *,
    timeout: Optional[float] = 10.0,
) -> dict:
    """Swap a router's shard membership live (``op: "reload-shards"``).

    ``shards`` is the complete new membership as ``(host, port)``
    pairs.  Surviving shards keep their health state and pins; joiners
    are polled before the reply; pins to departed shards are dropped
    (those sessions re-route on their next dial).  Returns the reload
    welcome (``{"status": "ok", "shards": [...], "added": n,
    "removed": n}``).
    """
    if not shards:
        raise ValueError("reload-shards needs at least one shard")
    hello = {
        "op": "reload-shards",
        "shards": [[str(h), int(p)] for h, p in shards],
    }
    welcome, link = _hello_exchange(host, port, hello, timeout=timeout)
    link.close()
    if welcome.get("status") != "ok":
        raise ServeError(f"reload-shards rejected: {welcome!r}")
    return welcome


def run_session(
    host: str,
    port: int,
    program: str,
    net: Netlist,
    *,
    session_id: Optional[str] = None,
    client_id: Optional[str] = None,
    garbler_key: Optional[str] = None,
    bob: BitSource = (),
    bob_init: Sequence[int] = (),
    public: BitSource = (),
    public_init: Sequence[int] = (),
    cycles: Optional[int] = None,
    ot: str = "simplest",
    ot_group: str = "modp512",
    engine: str = "compiled",
    timeout: Optional[float] = 30.0,
    max_attempts: int = 6,
    heartbeat: Optional[float] = None,
    wrap=None,
    obs=NULL_OBS,
) -> SessionResult:
    """Run one evaluator session against a garbling server.

    ``net`` must be structurally identical to the server's program
    netlist (the ``net-hello`` digest check enforces this).  ``cycles``
    may be omitted — the server's welcome names it; if given, a
    mismatch fails before any protocol traffic.  ``client_id`` is a
    stable identity across sessions; with ``ot="extension"`` it
    enables base-OT reuse (see the module docstring) and lets the
    server audit that pre-garbled delta epochs are never shared across
    identities.  ``wrap(attempt, link) -> link`` is the
    fault-injection splice point (tests wrap a connection attempt in a
    :class:`~repro.net.fault.FaultyTransport`).  ``garbler_key``
    selects a per-session garbler operand out of the program's keyed
    table (servers built with ``alice_by_key``).  Returns the
    evaluator's :class:`~repro.net.session.SessionResult` — possibly
    recovered from the server's replay buffer (``replayed=True``) when
    a redial found the session already finished.
    """
    sid = session_id or uuid.uuid4().hex
    hello = {"op": "session", "session": sid, "program": program}
    if garbler_key is not None:
        hello["garbler_key"] = garbler_key
    base_key = None
    advertised_base = None
    if client_id:
        hello["client"] = client_id
        base_key = (host, port, client_id)
        if ot == "extension":
            # Snapshot the cached base now: the hello's advertisement
            # and the base actually used must be the same material.
            advertised_base = _cached_receiver_base(base_key)
            if advertised_base is not None:
                hello["base_ot"] = True
    state = {"attempt": 0, "first": None}
    #: Mutable dial target: a drain-time ``moved`` redirect rewrites
    #: it so mid-session redials chase the session to its new shard.
    target = {"host": host, "port": port}

    def connect() -> Link:
        attempt = state["attempt"]
        state["attempt"] = attempt + 1
        welcome, link = _exchange_follow_moved(target, hello,
                                               timeout=timeout)
        if welcome.get("status") == "result":
            # The session finished without us (we died after the final
            # frame and are redialing): the server replayed the parked
            # result instead of admitting a session.
            link.close()
            raise _Replayed(welcome)
        if cycles is not None and welcome.get("cycles") != cycles:
            link.close()
            raise ServeError(
                f"server runs {welcome.get('cycles')} cycles, "
                f"client expected {cycles}"
            )
        state["welcome"] = welcome
        if wrap is not None:
            link = wrap(attempt, link)
        return link

    # Eager first connect: the welcome carries the authoritative cycle
    # count and checkpoint cadence the ResumableSession must be
    # constructed with.  Admission rejects (ServerBusy) surface here,
    # before any party state exists.
    try:
        first = connect()
    except _Replayed as exc:
        return _result_from_welcome(exc.welcome)
    welcome = state["welcome"]
    run_cycles = welcome["cycles"] if cycles is None else cycles
    state["first"] = first

    # A welcome carrying "base_ot" marks a material-aware extension-OT
    # server: both sides then derive their extension pools under the
    # session-unique salt, and skip the base phase entirely when the
    # server answered "cached" (it kept our sender side).
    base_mode = welcome.get("base_ot") if ot == "extension" else None
    ot_factory = None
    if base_mode is not None:
        reuse = advertised_base if base_mode == "cached" else None
        salt = session_salt(sid)

        def ot_factory(chan, _base=reuse, _salt=salt):
            return OTExtensionReceiver(
                chan, group=ot_group, base=_base, salt=_salt
            )

    party = EvaluatorParty(
        net,
        run_cycles,
        _expand_bits(net, "bob", bob, bob_init, run_cycles),
        public=public,
        public_init=public_init,
        ot_group=ot_group,
        ot=ot,
        obs=obs,
        engine=engine,
        ot_factory=ot_factory,
    )

    def connect_or_first() -> Link:
        link = state["first"]
        if link is not None:
            state["first"] = None
            return link
        return connect()

    session = ResumableSession(
        party,
        connect=connect_or_first,
        checkpoint_every=welcome["checkpoint_every"],
        timeout=timeout,
        max_attempts=max_attempts,
        heartbeat_interval=heartbeat,
        obs=obs,
    )
    try:
        result = session.run()
    except _Replayed as exc:
        # A reconnect raced the session's completion: the resume redial
        # found the session finished and got the parked result instead.
        return _result_from_welcome(exc.welcome)
    if base_mode == "fresh" and base_key is not None:
        # This session ran a real base phase: keep the receiver side so
        # the next session under this identity can skip it.
        export = getattr(party.backend._ot, "export_base", None)
        if export is not None:
            _store_receiver_base(base_key, export())
    return result


class ServeClient:
    """Handle to one serving endpoint — a single shard or a router.

    This is the object :func:`repro.api.connect` returns: it bundles
    the endpoint address with per-client defaults (identity, OT
    flavour, engine, timeout) so call sites stop threading a dozen
    kwargs through every session.  Each operation opens its own
    connection (the serve protocol is a hello/welcome exchange per
    connection), so the handle itself holds no socket; the context-
    manager form exists for scoping and API symmetry::

        with api.connect(("127.0.0.1", 9200)) as client:
            result = client.run("sum32", 7)
            print(client.stats()["completed"])

    Per-call keyword arguments override the client defaults.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        ot: str = "simplest",
        ot_group: str = "modp512",
        engine: str = "compiled",
        max_attempts: int = 6,
        heartbeat: Optional[float] = None,
        obs=NULL_OBS,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.client_id = client_id
        self.timeout = timeout
        self.ot = ot
        self.ot_group = ot_group
        self.engine = engine
        self.max_attempts = max_attempts
        self.heartbeat = heartbeat
        self.obs = obs

    # -- sessions -----------------------------------------------------

    def _session_defaults(self, kwargs: dict) -> dict:
        merged = {
            "client_id": self.client_id,
            "timeout": self.timeout,
            "ot": self.ot,
            "ot_group": self.ot_group,
            "engine": self.engine,
            "max_attempts": self.max_attempts,
            "heartbeat": self.heartbeat,
            "obs": self.obs,
        }
        merged.update(kwargs)
        return merged

    def submit(self, program: str, net: Netlist, **kwargs) -> SessionResult:
        """Run one evaluator session for ``program`` against this
        endpoint (see :func:`run_session` for the keyword surface)."""
        return run_session(
            self.host, self.port, program, net,
            **self._session_defaults(kwargs),
        )

    def run(self, circuit: str, value: int, **kwargs) -> SessionResult:
        """Run a bench-registry circuit with operand ``value`` as Bob
        (see :func:`run_registry_session`)."""
        return run_registry_session(
            self.host, self.port, circuit, value,
            **self._session_defaults(kwargs),
        )

    def run_batch(self, workload: str, values: Sequence[int], **kwargs):
        """Answer a vector of workload queries in **one** session.

        ``workload`` is a base workload name (``"psi-hash8x16"``);
        ``values`` seeds one query set each.  The endpoint must be
        serving the batched sibling program (``<name>@b<N>`` — routers
        route it by digest like any other program).  One garbling pass,
        one handshake, one base-OT phase and one garbler-input transfer
        answer all ``N`` queries; returns a
        :class:`~repro.workloads.batch.BatchResult` whose per-query
        ``outputs`` are bit-identical to ``N`` fresh :meth:`run` calls.
        Extra keyword arguments flow to :func:`run_session`
        (``garbler_key``, ``session_id``, ...).
        """
        from ..workloads import batched_name, get_workload
        from ..workloads.batch import BatchResult, encode_batch, split_batch

        name = batched_name(workload, len(values))
        batched = get_workload(name)
        net, cycles = batched.build()
        res = run_session(
            self.host, self.port, name, net,
            bob=encode_batch(workload, values),
            cycles=cycles,
            **self._session_defaults(kwargs),
        )
        outputs = list(res.outputs)
        return BatchResult(
            workload=workload,
            program=name,
            batch=len(values),
            queries=split_batch(workload, len(values), outputs),
            outputs=outputs,
            garbled_nonxor=res.stats.garbled_nonxor,
            raw=res,
        )

    # -- control plane ------------------------------------------------

    def recover_result(self, session_id: str, **kwargs) -> SessionResult:
        """Fetch the parked result of a finished session
        (``op: "result"``; see :func:`recover_result`)."""
        kwargs.setdefault("client_id", self.client_id)
        return recover_result(self.host, self.port, session_id, **kwargs)

    def stats(self, timeout: Optional[float] = 5.0) -> dict:
        """This endpoint's ``op: "stats"`` snapshot."""
        return fetch_stats(self.host, self.port, timeout=timeout)

    def fleet_stats(self, timeout: Optional[float] = 5.0) -> dict:
        """The aggregated fleet view (``op: "fleet-stats"``)."""
        return fetch_fleet_stats(self.host, self.port, timeout=timeout)

    def drain(
        self,
        shard: Optional[tuple] = None,
        peers: Sequence[tuple] = (),
        timeout: Optional[float] = 10.0,
    ) -> dict:
        """Trigger a drain with session handoff (see
        :func:`request_drain`)."""
        return request_drain(
            self.host, self.port, shard=shard, peers=peers,
            timeout=timeout,
        )

    def reload_shards(
        self, shards: Sequence[tuple], timeout: Optional[float] = 10.0
    ) -> dict:
        """Swap the router's shard membership live (see
        :func:`request_reload`)."""
        return request_reload(
            self.host, self.port, shards, timeout=timeout
        )

    # -- context manager ----------------------------------------------

    def close(self) -> None:
        """Nothing to release (each call opens its own connection);
        kept so the handle is a well-behaved context manager."""

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServeClient({self.host!r}, {self.port})"


def run_registry_session(
    host: str,
    port: int,
    circuit: str,
    value: int,
    session_id: Optional[str] = None,
    net: Optional[Netlist] = None,
    **kwargs,
) -> SessionResult:
    """Run a session for a bench-registry circuit with operand
    ``value`` as Bob.  ``net`` lets callers share one netlist instance
    (and thus one compiled plan) across many client threads."""
    from ..net.cli import _registry

    entry = _registry()[circuit]
    built, cycles = entry.build()
    if net is None:
        net = built
    return run_session(
        host,
        port,
        circuit,
        net,
        session_id=session_id,
        bob=entry.bob_source(value, cycles),
        cycles=cycles,
        **kwargs,
    )
