"""Chaos harness: adversarial clients alongside a verified load.

``python -m repro chaos`` points three adversary archetypes at a
running ``repro serve`` instance *while* a well-behaved load
generator runs against the same listener:

* **slow-loris** — connects and trickles its hello one byte at a
  time.  Expected outcome: a structured ``handshake-timeout`` reject
  at the handshake deadline; the trickle must never stall admission
  for anyone else.
* **mid-handshake disconnect** — sends half a hello and vanishes.
  Expected outcome: nothing visible (the edge counts a truncated
  handshake and moves on).
* **post-result crash** — runs a complete verified session, kills its
  connection between the last table batch and the output-decode ack,
  then redials and must recover its result **bit-identically** from
  the server's replay buffer.

The run fails (non-zero exit) if any well-behaved session failed, was
rejected or mis-verified; if any adversary saw an outcome other than
its expected one; if the p95 session latency under adversarial load
blew past the no-adversary baseline by more than the budget; or if
the server's hardening counters did not move (which would mean the
adversaries never actually exercised the edge).  Server-side "no
unhandled exceptions / no stalls" is asserted by the CI job wrapping
this command: it greps the server log for tracebacks and requires the
final stats record to report zero failed sessions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..net.codec import encode
from ..net.frame import FRAME_DATA, encode_frame
from ..net.links import Link, LinkClosed, LinkTimeout
from ..net.tcp import connect_with_backoff
from .client import ServeClient
from .handshake import HELLO, WELCOME, recv_control
from .loadgen import LoadgenReport, run_loadgen


@dataclass
class AdversaryOutcome:
    """What one adversarial client observed."""

    kind: str
    ok: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Aggregate verdict of one chaos run."""

    baseline: LoadgenReport
    adversarial: LoadgenReport
    adversaries: List[AdversaryOutcome]
    stats_before: dict
    stats_after: dict
    p95_ratio: float
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_record(self) -> dict:
        return {
            "ok": self.ok,
            "failures": list(self.failures),
            "baseline_p95_s": round(self.baseline.p95_seconds, 4),
            "adversarial_p95_s": round(self.adversarial.p95_seconds, 4),
            "p95_ratio": round(self.p95_ratio, 3),
            "baseline_ok": self.baseline.ok,
            "adversarial_ok": self.adversarial.ok,
            "adversaries": [
                {"kind": a.kind, "ok": a.ok, "detail": a.detail}
                for a in self.adversaries
            ],
            "handshake_rejects": self.stats_after.get("handshake_rejects", 0)
            - self.stats_before.get("handshake_rejects", 0),
            "handshake_timeouts": self.stats_after.get("handshake_timeouts", 0)
            - self.stats_before.get("handshake_timeouts", 0),
            "replay_hits": self.stats_after.get("replay_hits", 0)
            - self.stats_before.get("replay_hits", 0),
        }


def _hello_frame(sid: str, program: str) -> bytes:
    return encode_frame(
        FRAME_DATA, 1, HELLO,
        encode({"op": "session", "session": sid, "program": program}),
    )


def slow_loris(host: str, port: int, program: str, *,
               byte_interval: float = 0.2,
               give_up_after: float = 30.0) -> AdversaryOutcome:
    """Trickle a hello one byte at a time until the server rejects us.

    ``ok`` iff the server answered with a structured
    ``handshake-timeout`` (or ``bad-hello``) welcome before
    ``give_up_after`` — i.e. the deadline fired instead of the server
    waiting out the whole trickle."""
    frame = _hello_frame("chaos-loris", program)
    deadline = time.monotonic() + give_up_after
    try:
        link = connect_with_backoff(host, port, attempts=4)
    except (OSError, LinkClosed, LinkTimeout) as exc:
        return AdversaryOutcome("slow-loris", False, f"dial failed: {exc}")
    result: List[Optional[str]] = [None]

    def _reader() -> None:
        try:
            tag, payload, _ = recv_control(link, timeout=give_up_after)
            if tag == WELCOME and isinstance(payload, dict):
                result[0] = payload.get("status")
        except Exception:  # noqa: BLE001 — close races are fine
            pass
    reader = threading.Thread(target=_reader, daemon=True)
    reader.start()
    try:
        for i in range(len(frame)):
            if not reader.is_alive() or time.monotonic() > deadline:
                break
            try:
                link.send_bytes(frame[i:i + 1])
            except (LinkClosed, OSError):
                break  # the edge hung up — the reject is on its way
            time.sleep(byte_interval)
        reader.join(timeout=max(0.0, deadline - time.monotonic()))
        status = result[0]
    finally:
        link.close()
        reader.join(timeout=1.0)
    if status in ("handshake-timeout", "bad-hello"):
        return AdversaryOutcome("slow-loris", True, f"rejected: {status}")
    return AdversaryOutcome(
        "slow-loris", False,
        f"expected a handshake-timeout reject, saw {status!r}")


def mid_handshake_disconnect(host: str, port: int,
                             program: str) -> AdversaryOutcome:
    """Send half a hello, then vanish.  Succeeds unless the dial
    itself failed — the server-side effect (a counted truncated
    handshake, no exception) is asserted via the stats delta."""
    frame = _hello_frame("chaos-cut", program)
    try:
        link = connect_with_backoff(host, port, attempts=4)
    except (OSError, LinkClosed, LinkTimeout) as exc:
        return AdversaryOutcome("mid-handshake-disconnect", False,
                                f"dial failed: {exc}")
    try:
        link.send_bytes(frame[: len(frame) // 2])
        time.sleep(0.1)
    except (LinkClosed, OSError) as exc:
        return AdversaryOutcome("mid-handshake-disconnect", False,
                                f"send failed: {exc}")
    finally:
        link.close()
    return AdversaryOutcome("mid-handshake-disconnect", True)


class _DieBeforeBye(Link):
    """Link wrapper that kills the connection on the final ack —
    the client that crashes after the garbler decoded its output."""

    def __init__(self, inner: Link) -> None:
        self._inner = inner

    def send_bytes(self, data: bytes) -> None:
        if b"bye" in data:
            self._inner.close()
            raise LinkClosed("chaos: crashed before acking the result")
        self._inner.send_bytes(data)

    def recv_bytes(self, timeout=None) -> bytes:
        return self._inner.recv_bytes(timeout=timeout)

    def close(self) -> None:
        self._inner.close()


def post_result_crash(host: str, port: int, program: str, value: int, *,
                      session_id: str = "chaos-crash",
                      server_value: Optional[int] = None,
                      timeout: float = 30.0) -> AdversaryOutcome:
    """Run a session, crash before the decode ack, redial, recover.

    ``ok`` iff the redial recovered a replayed result — and, when
    ``server_value`` is known, iff that result matches the local
    simulator bit-for-bit."""
    kind = "post-result-crash"
    client = ServeClient(host, port, timeout=timeout, max_attempts=1)
    try:
        client.run(program, value, session_id=session_id,
                   wrap=lambda attempt, link: _DieBeforeBye(link))
        return AdversaryOutcome(
            kind, False, "session survived its own crash?")
    except Exception:  # noqa: BLE001 — the crash is the point
        pass
    # The server holds the session open for its resume window before
    # declaring it failed and parking the decoded result — keep
    # probing through the "pending" answers until it lands.
    from .handshake import ResultPending

    recovered = None
    deadline = time.monotonic() + max(timeout, 10.0)
    while recovered is None:
        try:
            recovered = client.recover_result(session_id,
                                              attempts=1, timeout=5.0)
        except ResultPending:
            if time.monotonic() > deadline:
                return AdversaryOutcome(
                    kind, False,
                    f"result still pending after {timeout}s — the "
                    "server never gave up on the dead connection")
            time.sleep(0.5)
        except Exception as exc:  # noqa: BLE001
            return AdversaryOutcome(kind, False, f"recovery failed: {exc}")
    if not getattr(recovered, "replayed", False):
        return AdversaryOutcome(kind, False, "result was not a replay")
    if server_value is not None:
        from .. import api
        from ..net.cli import _registry

        entry = _registry()[program]
        net, cycles = entry.build()
        ref = api.run(
            net,
            {"alice": entry.alice_source(server_value, cycles),
             "bob": entry.bob_source(value, cycles)},
            mode="local",
            cycles=cycles,
        )
        if recovered.value != ref.value or \
                recovered.outputs != list(ref.outputs):
            return AdversaryOutcome(
                kind, False,
                f"replayed result {recovered.value} != simulator "
                f"{ref.value} (bit-identity broken)")
    return AdversaryOutcome(kind, True,
                            f"recovered value {recovered.value}")


def run_chaos(
    host: str,
    port: int,
    program: str = "sum32",
    *,
    clients: int = 4,
    server_value: Optional[int] = None,
    loris: int = 2,
    disconnects: int = 2,
    crashes: int = 1,
    p95_factor: float = 1.2,
    p95_slack: float = 0.25,
    timeout: float = 30.0,
    byte_interval: float = 0.2,
) -> ChaosReport:
    """Baseline loadgen, then the same loadgen with adversaries.

    The p95 budget is ``baseline_p95 * p95_factor + p95_slack`` — the
    multiplicative part is the real claim (adversaries must not slow
    honest sessions down), the additive slack absorbs scheduler noise
    on sub-100ms baselines."""
    probe = ServeClient(host, port)
    stats_before = probe.stats()
    baseline = run_loadgen(
        host, port, program, clients=clients, server_value=server_value,
        timeout=timeout, session_prefix="chaos-base")

    adversaries: List[AdversaryOutcome] = []
    lock = threading.Lock()

    def spawn(fn, *args, **kwargs):
        def run():
            out = fn(*args, **kwargs)
            with lock:
                adversaries.append(out)

        t = threading.Thread(target=run, daemon=True)
        t.start()
        return t

    threads = []
    for _ in range(loris):
        threads.append(spawn(slow_loris, host, port, program,
                             byte_interval=byte_interval))
    for _ in range(disconnects):
        threads.append(spawn(mid_handshake_disconnect, host, port, program))
    for i in range(crashes):
        threads.append(spawn(
            post_result_crash, host, port, program, 7000 + i,
            session_id=f"chaos-crash-{i}", server_value=server_value,
            timeout=timeout))

    adversarial = run_loadgen(
        host, port, program, clients=clients, server_value=server_value,
        timeout=timeout, session_prefix="chaos-adv")
    for t in threads:
        t.join(timeout=timeout + 60.0)
    stats_after = probe.stats()

    failures: List[str] = []
    if adversarial.ok != clients:
        failures.append(
            f"well-behaved sessions: {adversarial.ok}/{clients} ok "
            f"({adversarial.busy} busy, {adversarial.failed} failed)")
    failures.extend(f"verify: {e}" for e in adversarial.verify_errors)
    for a in adversaries:
        if not a.ok:
            failures.append(f"{a.kind}: {a.detail}")
    expected_adversaries = loris + disconnects + crashes
    if len(adversaries) != expected_adversaries:
        failures.append(
            f"only {len(adversaries)}/{expected_adversaries} adversaries "
            "reported back (one hung?)")
    budget = baseline.p95_seconds * p95_factor + p95_slack
    if adversarial.p95_seconds > budget:
        failures.append(
            f"p95 under adversaries {adversarial.p95_seconds:.3f}s "
            f"exceeds budget {budget:.3f}s "
            f"(baseline {baseline.p95_seconds:.3f}s)")
    rejects_moved = (stats_after.get("handshake_rejects", 0)
                     > stats_before.get("handshake_rejects", 0))
    if (loris + disconnects) > 0 and not rejects_moved:
        failures.append("handshake_rejects counter never moved — the "
                        "adversaries did not reach the edge")
    replays = (stats_after.get("replay_hits", 0)
               - stats_before.get("replay_hits", 0))
    if crashes > 0 and replays < crashes:
        failures.append(
            f"replay_hits moved by {replays}, expected >= {crashes}")

    ratio = (adversarial.p95_seconds / baseline.p95_seconds
             if baseline.p95_seconds > 0 else 0.0)
    return ChaosReport(
        baseline=baseline,
        adversarial=adversarial,
        adversaries=sorted(adversaries, key=lambda a: a.kind),
        stats_before=stats_before,
        stats_after=stats_after,
        p95_ratio=ratio,
        failures=failures,
    )
