"""Asyncio front door for the garbling service.

The serve listener used to be a thread that blocked in ``accept()``
and then blocked *again* reading the hello on the accept path — one
slow-loris client (connect, then trickle the hello a byte at a time)
stalled admission for everyone, and every idle connection held a
thread.  :class:`AsyncEdge` replaces that with a single event loop in
one daemon thread:

* **Accept** is non-blocking; each connection gets an
  :class:`_EdgeConnection` protocol whose state machine is driven
  entirely by loop callbacks.  Ten thousand idle connections cost ten
  thousand sockets and zero threads.
* **Handshake parsing** happens incrementally in ``data_received`` via
  :class:`~repro.serve.handshake.HelloParser` — malformed, oversized
  or truncated hellos become structured ``serve-welcome`` rejects plus
  counters, never an exception anywhere near the accept path.
* **Per-state deadlines** are ``loop.call_later`` timers: a connection
  that sends nothing is closed at ``idle_timeout``; once the first
  hello byte arrives the clock tightens to ``handshake_timeout`` — the
  slow-loris is rejected at the deadline no matter how diligently it
  trickles.  Heartbeats, when enabled, are timer callbacks too.
* **Overload sheds idle before refusing new**: at ``max_connections``
  the oldest connection still in the no-bytes idle state is shed (a
  structured ``shed-idle`` reject) to make room; only when nobody is
  sheddable does the newcomer get an ``overloaded`` reject, carrying
  exponential-backoff guidance in ``retry_after_s``.
* **Admission stays where it was**: a parsed hello is handed — with
  the connected socket and any leftover bytes — to a small executor
  running the server's synchronous handshake-completion logic, which
  reuses the existing admission control and fd-passing path into the
  process-worker pool untouched.

The socket handoff is the one delicate step: the loop's transport owns
a non-blocking socket, and ``dup()`` shares file-status flags.  The
edge pauses reading, dups the fd, closes the transport (its copy), and
builds a :class:`~repro.net.tcp.TcpLink` from the duplicate —
``TcpLink.from_fd`` restores blocking mode, and because the loop never
reads again and has nothing buffered to write, the worker sees a clean
byte stream starting exactly at the leftover.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional

from ..net.codec import encode
from ..net.frame import FRAME_DATA, FRAME_HEARTBEAT, encode_frame
from ..net.tcp import TcpLink
from .handshake import (
    MAX_HELLO_BYTES,
    WELCOME,
    HandshakeReject,
    HelloParser,
)

#: Handler invoked (on an executor thread) for every parsed hello:
#: ``handler(link, hello_dict, leftover_bytes)``.
HelloHandler = Callable[[TcpLink, dict, bytes], None]

#: Counter callback: ``counter(name)`` bumps a per-server stat.
Counter = Callable[[str], None]


def _welcome_frame(payload: dict) -> bytes:
    return encode_frame(FRAME_DATA, 1, WELCOME, encode(payload))


_HEARTBEAT_FRAME = encode_frame(FRAME_HEARTBEAT, 0, "hb", b"")


class _EdgeConnection(asyncio.Protocol):
    """Per-connection handshake state machine.

    States: ``idle`` (no bytes yet; sheddable; idle-timeout clock) →
    ``hello`` (bytes arriving; handshake-timeout clock) → ``handoff``
    (hello parsed; socket surrendered to the handler) or ``closed``
    (rejected / lost).
    """

    def __init__(self, edge: "AsyncEdge") -> None:
        self._edge = edge
        self._parser = HelloParser(max_bytes=edge.max_hello_bytes)
        self._transport: Optional[asyncio.Transport] = None
        self._timer: Optional[asyncio.TimerHandle] = None
        self._beat: Optional[asyncio.TimerHandle] = None
        self.state = "idle"

    # -- lifecycle ----------------------------------------------------

    def connection_made(self, transport) -> None:
        self._transport = transport
        edge = self._edge
        if edge.draining:
            self._reject(
                {"status": "draining", "reason": "server is draining",
                 "retry_after_s": edge.retry_after()},
                counter="rejected_busy",
            )
            return
        if len(edge._conns) >= edge.max_connections:
            if not edge._shed_one():
                self._reject(
                    {"status": "overloaded",
                     "reason": f"{edge.max_connections} connections open "
                               "and none sheddable",
                     "retry_after_s": edge.retry_after(pressure=True)},
                    counter="rejected_overload",
                )
                return
        edge._conns[self] = None
        edge._idle[self] = None
        self._arm(edge.idle_timeout, self._on_idle_deadline)
        if edge.heartbeat is not None:
            self._beat = edge.loop.call_later(
                edge.heartbeat, self._on_heartbeat
            )

    def connection_lost(self, exc) -> None:
        if self.state == "hello":
            # The peer hung up mid-hello: a truncated handshake.
            self._edge.counter("handshake_rejects")
        self._teardown()

    def data_received(self, data: bytes) -> None:
        if self.state not in ("idle", "hello"):
            return
        edge = self._edge
        if self.state == "idle":
            self.state = "hello"
            edge._idle.pop(self, None)
            self._arm(edge.handshake_timeout, self._on_handshake_deadline)
        try:
            done = self._parser.feed(data)
        except HandshakeReject as exc:
            edge.counter("handshake_rejects")
            self._reject(
                {"status": "bad-hello", "error": exc.kind,
                 "reason": exc.reason,
                 "retry_after_s": edge.retry_after()},
                counter=None,
            )
            return
        if done is None:
            return
        hello, leftover = done
        self._handoff(hello, leftover)

    # -- deadlines ----------------------------------------------------

    def _arm(self, timeout: Optional[float], callback) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if timeout is not None and timeout > 0:
            self._timer = self._edge.loop.call_later(timeout, callback)

    def _on_idle_deadline(self) -> None:
        self._edge.counter("idle_timeouts")
        self._reject(
            {"status": "idle-timeout",
             "reason": f"no hello within {self._edge.idle_timeout}s "
                       "of connecting"},
            counter=None,
        )

    def _on_handshake_deadline(self) -> None:
        edge = self._edge
        edge.counter("handshake_timeouts")
        edge.counter("handshake_rejects")
        self._reject(
            {"status": "handshake-timeout",
             "reason": f"hello incomplete after {edge.handshake_timeout}s "
                       f"({self._parser.pending_bytes} bytes pending)",
             "retry_after_s": edge.retry_after()},
            counter=None,
        )

    def _on_heartbeat(self) -> None:
        if self.state not in ("idle", "hello") or self._transport is None:
            return
        self._transport.write(_HEARTBEAT_FRAME)
        self._beat = self._edge.loop.call_later(
            self._edge.heartbeat, self._on_heartbeat
        )

    # -- transitions --------------------------------------------------

    def _handoff(self, hello: dict, leftover: bytes) -> None:
        edge = self._edge
        transport = self._transport
        self.state = "handoff"
        self._teardown()
        if transport is None:
            return
        try:
            transport.pause_reading()
            sock = transport.get_extra_info("socket")
            dup = sock.dup()
        except OSError:
            transport.close()
            return
        transport.close()
        edge._submit(dup, hello, leftover)

    def shed(self) -> None:
        """Close this (idle) connection to make room for a newcomer."""
        self._edge.counter("idle_shed")
        self._reject(
            {"status": "shed-idle",
             "reason": "connection shed under overload before sending "
                       "a hello",
             "retry_after_s": self._edge.retry_after(pressure=True)},
            counter=None,
        )

    def reject_draining(self) -> None:
        """Drain fired before this connection was admitted."""
        self._reject(
            {"status": "draining", "reason": "server is draining",
             "retry_after_s": self._edge.retry_after()},
            counter="rejected_busy",
        )

    def _reject(self, payload: dict, counter: Optional[str]) -> None:
        if counter is not None:
            self._edge.counter(counter)
        transport = self._transport
        self.state = "closed"
        self._teardown()
        if transport is None or transport.is_closing():
            return
        try:
            transport.write(_welcome_frame(payload))
        except OSError:
            pass
        transport.close()

    def _teardown(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._beat is not None:
            self._beat.cancel()
            self._beat = None
        self._edge._conns.pop(self, None)
        self._edge._idle.pop(self, None)
        if self.state not in ("handoff",):
            self.state = "closed"


class AsyncEdge:
    """Single-threaded asyncio listener feeding a handshake handler.

    The listening socket is bound in the constructor (so ``host`` /
    ``port`` are known before :meth:`start`); the event loop runs in
    one daemon thread and parsed hellos are completed on a small
    dedicated executor so a slow admission decision never blocks the
    loop.
    """

    def __init__(
        self,
        handler: HelloHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        handshake_timeout: float = 5.0,
        idle_timeout: Optional[float] = 60.0,
        max_connections: int = 10_000,
        max_hello_bytes: int = MAX_HELLO_BYTES,
        heartbeat: Optional[float] = None,
        counter: Optional[Counter] = None,
        handshake_workers: int = 4,
        backlog: int = 512,
    ) -> None:
        self.handler = handler
        self.handshake_timeout = handshake_timeout
        self.idle_timeout = idle_timeout
        self.max_connections = max_connections
        self.max_hello_bytes = max_hello_bytes
        self.heartbeat = heartbeat
        self.counter = counter if counter is not None else (lambda name: None)
        self._handshake_workers = handshake_workers
        self._backlog = backlog
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
        sock.setblocking(False)
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.draining = False
        # Loop-thread-only state: insertion-ordered connection sets
        # (dict-as-ordered-set), so "oldest idle" is the first key.
        self._conns: Dict[_EdgeConnection, None] = {}
        self._idle: Dict[_EdgeConnection, None] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._ready = threading.Event()
        self._stopped = False
        self._pressure = 0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self._handshake_workers,
            thread_name_prefix="serve-edge-hs",
        )
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-edge", daemon=True
        )
        self._thread.start()
        self._ready.wait()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self.loop = loop
        try:
            self._server = loop.run_until_complete(
                loop.create_server(
                    lambda: _EdgeConnection(self),
                    sock=self._sock,
                    backlog=self._backlog,
                )
            )
            self._ready.set()
            loop.run_forever()
            self._drain_on_loop()
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            self._ready.set()  # unblock start() if create_server blew up
            loop.close()

    def begin_drain(self) -> None:
        """Stop accepting and reject every not-yet-admitted connection
        with a structured ``draining`` welcome.  Idempotent; safe from
        any thread; synchronous (pending handshakes are answered by
        the time this returns)."""
        self.draining = True
        loop = self.loop
        if loop is None or not loop.is_running():
            return
        done = threading.Event()

        def _drain() -> None:
            try:
                self._drain_on_loop()
            finally:
                done.set()

        loop.call_soon_threadsafe(_drain)
        done.wait(timeout=5.0)

    def _drain_on_loop(self) -> None:
        self.draining = True
        if self._server is not None:
            self._server.close()
        for conn in list(self._conns):
            conn.reject_draining()

    def stop(self) -> None:
        """Drain, stop the loop, join the thread and the executor."""
        if self._stopped:
            return
        self._stopped = True
        self.begin_drain()
        loop = self.loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._thread is None:
            # Never started: the bound socket is still ours to close.
            self._sock.close()

    # -- overload / backoff -------------------------------------------

    def retry_after(self, pressure: bool = False) -> float:
        """Exponential-backoff guidance for reject payloads.

        Each overload event doubles the suggested delay (capped at
        5 s); the streak resets once the connection table drops below
        half capacity.  Non-pressure rejects suggest the floor.
        """
        if pressure:
            self._pressure = min(self._pressure + 1, 7)
        elif len(self._conns) < self.max_connections // 2:
            self._pressure = 0
        return round(min(5.0, 0.1 * (2 ** self._pressure)), 3)

    def _shed_one(self) -> bool:
        for conn in list(self._idle):
            conn.shed()
            return True
        return False

    # -- handoff ------------------------------------------------------

    def _submit(self, sock: socket.socket, hello: dict, leftover: bytes) -> None:
        try:
            self._executor.submit(self._run_handler, sock, hello, leftover)
        except RuntimeError:
            sock.close()  # drain raced the handoff; the client redials

    def _run_handler(self, sock: socket.socket, hello: dict, leftover: bytes) -> None:
        link = TcpLink.from_fd(sock.detach())
        try:
            self.handler(link, hello, leftover)
        except Exception:
            # Hostile or unlucky input must never take down the edge;
            # the admission path already answered (or the peer is
            # gone) — drop the connection and move on.
            link.close()

    # -- introspection ------------------------------------------------

    def connection_counts(self) -> Dict[str, int]:
        """Loop-thread-unsafe approximate counts (stats only)."""
        return {"open": len(self._conns), "idle": len(self._idle)}
