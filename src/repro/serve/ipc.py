"""Parent <-> worker control-plane messaging with fd passing.

The process-based serve pool (:mod:`repro.serve.server` /
:mod:`repro.serve.worker`) needs two things a plain
``multiprocessing.Queue`` cannot provide:

* **Socket handoff.**  The accept loop lives in the parent; the
  session protocol runs in a worker process.  A (re)connected TCP
  socket must therefore cross a process boundary *as a file
  descriptor* (``SCM_RIGHTS`` via :func:`socket.send_fds`), not as
  bytes — the worker then owns the live connection and the parent
  closes its copy.
* **Ordered control + data on one wire.**  Session assignment, link
  handoff, completion records and the stop sentinel must arrive in
  send order so a worker never sees a link for a session it was never
  assigned (or a stop ahead of an assignment).

:class:`MsgChannel` wraps one end of an ``AF_UNIX`` stream socketpair
with length-prefixed pickled dict messages; a message that carries
descriptors declares ``nfds`` and the descriptors ride the ancillary
data of its first byte.  Receive-side descriptors are collected in
arrival order and handed out per message, which is correct because
SCM_RIGHTS ancillary payloads never cross a ``recvmsg`` boundary into
a later segment's data.

These channels connect processes of one UID on one host (the pool is
spawned by the server itself), so pickle is an implementation detail,
not an attack surface.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import List, Sequence, Tuple

__all__ = ["IpcClosed", "MsgChannel", "channel_pair"]

_HDR = struct.Struct("<I")
_CHUNK = 1 << 16
#: Upper bound on descriptors per message (a handoff carries one).
MAX_FDS = 8


class IpcClosed(Exception):
    """The peer end of the control channel is gone (EOF or reset)."""


class MsgChannel:
    """One end of a duplex control channel carrying ``(msg, fds)``.

    ``send`` is thread-safe (the parent's dispatcher and accept loop
    both write to a worker's channel); ``recv`` is single-reader by
    design — each end runs exactly one reader thread.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._buf = bytearray()
        self._fds: List[int] = []
        self._closed = False

    def send(self, msg: dict, fds: Sequence[int] = ()) -> None:
        """Send one message, optionally attaching file descriptors.

        The ``nfds`` key is stamped onto the message so the receiver
        knows how many descriptors belong to it.
        """
        if fds:
            msg = dict(msg, nfds=len(fds))
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        data = _HDR.pack(len(payload)) + payload
        try:
            with self._send_lock:
                if fds:
                    # Ancillary data rides the first segment; finish the
                    # tail with plain sends if the kernel took less.
                    sent = socket.send_fds(self._sock, [data], list(fds))
                    while sent < len(data):
                        sent += self._sock.send(data[sent:])
                else:
                    self._sock.sendall(data)
        except OSError as exc:
            raise IpcClosed(str(exc)) from exc

    def recv(self) -> Tuple[dict, List[int]]:
        """Next ``(msg, fds)`` pair; raises :class:`IpcClosed` on EOF."""
        (n,) = _HDR.unpack(self._read(_HDR.size))
        msg = pickle.loads(self._read(n))
        nfds = msg.get("nfds", 0)
        # Descriptors attach to the message's own bytes, so by the time
        # the payload is fully read they have been collected; the loop
        # is a guard against a short ancillary delivery.
        while len(self._fds) < nfds:
            self._fill()
        fds, self._fds = self._fds[:nfds], self._fds[nfds:]
        return msg, fds

    def _read(self, n: int) -> bytes:
        while len(self._buf) < n:
            self._fill()
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    def _fill(self) -> None:
        try:
            data, fds, _flags, _addr = socket.recv_fds(
                self._sock, _CHUNK, MAX_FDS
            )
        except OSError as exc:
            raise IpcClosed(str(exc)) from exc
        if fds:
            self._fds.extend(fds)
        if not data and not fds:
            raise IpcClosed("peer closed the control channel")
        self._buf += data

    def close(self) -> None:
        """Tear down; wakes a peer blocked in :meth:`recv` with EOF."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()


def channel_pair() -> Tuple[MsgChannel, MsgChannel]:
    """A connected (parent_end, worker_end) channel pair."""
    a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    return MsgChannel(a), MsgChannel(b)
