"""``python -m repro serve`` / ``python -m repro loadgen``.

Two-terminal deployment of the garbling service::

    # terminal 1 — long-lived garbler serving the registry circuits:
    python -m repro serve --circuit sum32 --value 1234 \\
        --listen 127.0.0.1:9200 --workers 4 --queue-depth 8

    # terminal 2 — 4 concurrent verified evaluator sessions:
    python -m repro loadgen --connect 127.0.0.1:9200 --circuit sum32 \\
        --clients 4 --server-value 1234

The server prints one ``ready`` line (JSON with the bound port) as
soon as it accepts, runs until SIGTERM/SIGINT (or ``--max-sessions``),
drains gracefully, and exits with a final stats record.  The load
generator exits non-zero if any session failed, was rejected, or
failed verification — the CI ``serve-smoke`` job is exactly this pair
of commands.
"""

from __future__ import annotations

import json
import signal
import sys
from typing import Tuple


def _parse_hostport(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _emit(args, record: dict) -> None:
    if args.json:
        print(json.dumps(record, sort_keys=True), flush=True)
        return
    for k, v in record.items():
        print(f"{k:20s}: {v}", flush=True)


def run_serve(args) -> int:
    from ..net.cli import circuit_names
    from ..obs import JsonlSink, Obs
    from .config import ServeConfig
    from .server import GarbleServer, registry_program

    names = list(args.circuit or ())
    if getattr(args, "workload", None):
        from ..workloads import SERVE_SETS

        for family in args.workload:
            names.extend(
                n for n in SERVE_SETS[family] if n not in names
            )
    if not names:
        names = list(circuit_names())
    programs = {name: registry_program(name, args.value) for name in names}
    obs = Obs(sink=JsonlSink(args.trace)) if args.trace else None
    config = ServeConfig.from_args(args)
    server = GarbleServer(
        programs,
        config=config,
        **({"obs": obs} if obs is not None else {}),
    )

    def _on_signal(signum, frame):
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    server.start()
    # The ready line is a machine-readable contract: CI and the bench
    # wait for it (and read the bound port, crucial with port 0).
    print(
        json.dumps(
            {"event": "ready", "host": server.host, "port": server.port,
             "programs": sorted(programs), "workers": config.workers,
             "queue_depth": config.queue_depth, "pool": server.pool,
             "fleet": server.fleet},
            sort_keys=True,
        ),
        flush=True,
    )
    server.serve_forever()
    if obs is not None:
        obs.close()
    record = {"event": "stats"}
    record.update(server.stats_snapshot())
    record.pop("sessions", None)
    _emit(args, record)
    return 0 if server.stats.failed == 0 else 1


def run_router(args) -> int:
    from ..obs import JsonlSink, Obs
    from .config import RouterConfig
    from .router import SessionRouter

    obs = Obs(sink=JsonlSink(args.trace)) if args.trace else None
    config = RouterConfig.from_args(args)
    router = SessionRouter(
        config, **({"obs": obs} if obs is not None else {})
    )

    def _on_signal(signum, frame):
        router.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    router.start()
    # Same machine-readable ready contract as `repro serve`: CI waits
    # for this line and reads the bound port (crucial with port 0).
    print(
        json.dumps(
            {"event": "ready", "host": router.host, "port": router.port,
             "shards": [list(addr) for addr in config.shards]},
            sort_keys=True,
        ),
        flush=True,
    )
    router.serve_forever()
    if obs is not None:
        obs.close()
    record = {"event": "stats"}
    record.update(router.stats_snapshot())
    record.pop("config", None)
    _emit(args, record)
    return 0


def run_loadgen_cmd(args) -> int:
    from .loadgen import run_loadgen

    host, port = _parse_hostport(args.connect)
    circuit = args.circuit
    if getattr(args, "workload", None) and circuit == "sum32":
        # --workload picked, --circuit left at its default: run the
        # family's default circuit.
        from ..workloads import DEFAULT_CIRCUIT

        circuit = DEFAULT_CIRCUIT[args.workload]
    report = run_loadgen(
        host,
        port,
        circuit,
        clients=args.clients,
        arrival=args.arrival,
        interval=args.interval,
        base_value=args.value_base,
        server_value=args.server_value,
        timeout=args.timeout,
        engine=args.engine,
        ot=args.ot,
        ot_group=args.ot_group,
        verify=not args.no_verify,
        client_procs=args.client_procs,
        client_prefix=args.client_prefix,
        warmup=args.warmup,
        busy_retries=args.busy_retries,
        workload=getattr(args, "workload", None),
    )
    _emit(args, report.to_record())
    if not args.json:
        for out in report.outcomes:
            status = "ok" if out.ok else ("busy" if out.busy else "FAILED")
            extra = f" ({out.error})" if out.error else ""
            print(f"  {out.session:28s} {status:6s} "
                  f"{out.seconds * 1e3:8.1f} ms{extra}")
    bad = report.failed + report.busy + len(report.verify_errors)
    return 0 if bad == 0 else 1


def run_chaos_cmd(args) -> int:
    from .chaos import run_chaos

    host, port = _parse_hostport(args.connect)
    report = run_chaos(
        host,
        port,
        args.circuit,
        clients=args.clients,
        server_value=args.server_value,
        loris=args.loris,
        disconnects=args.disconnects,
        crashes=args.crashes,
        p95_factor=args.p95_factor,
        p95_slack=args.p95_slack,
        timeout=args.timeout,
        byte_interval=args.byte_interval,
    )
    record = report.to_record()
    adversaries = record.pop("adversaries")
    _emit(args, record)
    if not args.json:
        for a in adversaries:
            mark = "ok" if a["ok"] else "FAILED"
            extra = f" ({a['detail']})" if a["detail"] else ""
            print(f"  {a['kind']:28s} {mark}{extra}")
        for failure in report.failures:
            print(f"  FAILURE: {failure}")
    return 0 if report.ok else 1


def add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="long-lived multi-session garbling server",
        description="Serve the garbler side of registry circuits to many "
        "concurrent evaluator sessions over one TCP listener, with a "
        "bounded worker pool, admission control and graceful drain on "
        "SIGTERM.",
    )
    p.add_argument("--circuit", action="append", metavar="NAME",
                   help="registry circuit to serve (repeatable; "
                        "default: every registry circuit)")
    p.add_argument("--workload", action="append", choices=("psi",),
                   metavar="FAMILY",
                   help="serve a workload family's circuit set (its "
                        "default shape plus registered batch shapes; "
                        "repeatable, composes with --circuit)")
    p.add_argument("--value", type=lambda s: int(s, 0), default=0,
                   help="the garbler operand used for every session")
    p.add_argument("--listen", default="127.0.0.1:9200", metavar="HOST:PORT")
    p.add_argument("--workers", type=int, default=4,
                   help="concurrent session workers — one OS process "
                        "each under the default process pool (default 4)")
    p.add_argument("--pool", choices=("auto", "process", "thread"),
                   default="auto",
                   help="worker pool kind: 'process' pins one forkserver "
                        "process per worker (true multi-core garbling), "
                        "'thread' keeps the in-process pool, 'auto' "
                        "(default) picks process when the platform and "
                        "programs allow it")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="bounded accept queue; beyond it new sessions get "
                        "an immediate structured busy reject (default 8)")
    p.add_argument("--checkpoint-every", type=int, default=4, metavar="N",
                   help="checkpoint cadence imposed on every session")
    p.add_argument("--max-attempts", type=int, default=6,
                   help="per-session reconnect budget")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="receive deadline / resume window in seconds")
    p.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS")
    p.add_argument("--handshake-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="deadline from the first hello byte to a complete "
                        "hello; a slow-loris client is rejected here "
                        "(default 5)")
    p.add_argument("--idle-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="how long a connection may sit without sending a "
                        "single byte before being closed (default 60)")
    p.add_argument("--replay-ttl", type=float, default=120.0,
                   metavar="SECONDS",
                   help="how long a finished session's result stays "
                        "replayable for a redialing client; 0 disables "
                        "the replay buffer (default 120)")
    p.add_argument("--max-connections", type=int, default=10000, metavar="N",
                   help="open-connection ceiling at the edge; beyond it "
                        "idle connections are shed before new ones are "
                        "refused (default 10000)")
    p.add_argument("--max-sessions", type=int, default=None, metavar="N",
                   help="drain and exit after N sessions finished (CI)")
    p.add_argument("--engine", choices=("compiled", "reference"),
                   default="compiled")
    p.add_argument("--ot", choices=("simplest", "extension"),
                   default="simplest")
    p.add_argument("--ot-group", choices=("modp512", "modp2048"),
                   default="modp512")
    p.add_argument("--no-precompute", action="store_true",
                   help="disable the offline phase (pre-garbled material "
                        "per program); every session garbles inline")
    p.add_argument("--material-depth", type=int, default=2, metavar="N",
                   help="delta epochs pre-garbled per program per worker "
                        "in the offline phase (default 2)")
    p.add_argument("--fleet", action="store_true",
                   help="run as a fleet shard: honor drain/adopt hellos "
                        "so a router can hand live sessions between "
                        "shards (see `repro router`)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write serve/session trace events as JSON lines")
    p.add_argument("--json", action="store_true",
                   help="emit the final stats as one JSON record")
    p.set_defaults(func=run_serve)


def add_router_parser(sub) -> None:
    p = sub.add_parser(
        "router",
        help="digest-affinity session router fronting serve shards",
        description="Front N `repro serve --fleet` shards with one "
        "listener: hellos are terminated here, sessions are routed by "
        "program-digest rendezvous hashing (with session affinity for "
        "redials), unhealthy shards are routed around, and op:drain "
        "hands a shard's live sessions to its peers mid-session.",
    )
    p.add_argument("--listen", default="127.0.0.1:9300", metavar="HOST:PORT")
    p.add_argument("--shard", action="append", required=True,
                   metavar="HOST:PORT", dest="shard",
                   help="a fleet shard's serve address (repeatable)")
    p.add_argument("--poll-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="health/backpressure stats poll cadence "
                        "(default 1.0)")
    p.add_argument("--dead-after", type=int, default=3, metavar="N",
                   help="consecutive failed polls before a shard is "
                        "routed around (default 3)")
    p.add_argument("--connect-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="deadline for dialing a shard (default 5)")
    p.add_argument("--handshake-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="deadline from first hello byte to a complete "
                        "hello (default 5)")
    p.add_argument("--idle-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="silent pre-hello connections are closed after "
                        "this (default 60)")
    p.add_argument("--max-connections", type=int, default=10000,
                   metavar="N",
                   help="open-connection ceiling (default 10000)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write router trace events as JSON lines")
    p.add_argument("--json", action="store_true",
                   help="emit the final stats as one JSON record")
    p.set_defaults(func=run_router)


def add_loadgen_parser(sub) -> None:
    p = sub.add_parser(
        "loadgen",
        help="spawn K verified evaluator clients against a serve instance",
        description="Run K concurrent evaluator sessions against a running "
        "`repro serve` server and verify every result; exits non-zero on "
        "any failed, rejected or unverified session.",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.add_argument("--circuit", default="sum32")
    p.add_argument("--workload", choices=("psi",), default=None,
                   help="treat the circuit as this workload family: "
                        "defaults --circuit to the family's default "
                        "shape and adds semantic verification of every "
                        "decoded result against the plain-python "
                        "oracle (requires --server-value)")
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--arrival", choices=("burst", "paced"), default="burst")
    p.add_argument("--interval", type=float, default=0.05,
                   help="inter-arrival gap for --arrival paced (seconds)")
    p.add_argument("--value-base", type=lambda s: int(s, 0), default=1000,
                   help="client i uses operand value-base + i")
    p.add_argument("--server-value", type=lambda s: int(s, 0), default=None,
                   help="the server's --value; arms full result "
                        "verification against the local simulator")
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--engine", choices=("compiled", "reference"),
                   default="compiled")
    p.add_argument("--ot", choices=("simplest", "extension"),
                   default="simplest")
    p.add_argument("--ot-group", choices=("modp512", "modp2048"),
                   default="modp512")
    p.add_argument("--client-procs", action="store_true",
                   help="run each client in its own OS process so the "
                        "load generator scales past one core (use when "
                        "measuring a multi-core server)")
    p.add_argument("--client-prefix", default=None, metavar="PREFIX",
                   help="give client i the stable identity "
                        "PREFIX-client-i across its sessions, arming "
                        "per-client base-OT reuse on the server")
    p.add_argument("--warmup", type=int, default=0, metavar="N",
                   help="unmeasured sessions per client before the "
                        "release barrier (measure the steady online "
                        "phase)")
    p.add_argument("--busy-retries", type=int, default=2, metavar="N",
                   help="per-client budget for re-dialing after a busy/"
                        "overload reject, honoring the server's "
                        "retry_after_s backoff hint (default 2; 0 "
                        "fails fast on the first reject)")
    p.add_argument("--no-verify", action="store_true")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=run_loadgen_cmd)


def add_chaos_parser(sub) -> None:
    p = sub.add_parser(
        "chaos",
        help="adversarial clients + verified load against a serve instance",
        description="Drive a running `repro serve` server with slow-loris "
        "hellos, mid-handshake disconnects and post-result crash/redial "
        "clients while a verified load generator runs; exits non-zero if "
        "any honest session suffered, any adversary escaped its "
        "structured reject, the replay recovery was not bit-identical, "
        "or p95 latency blew the budget.",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.add_argument("--circuit", default="sum32")
    p.add_argument("--clients", type=int, default=4,
                   help="well-behaved sessions per loadgen round")
    p.add_argument("--server-value", type=lambda s: int(s, 0), default=None,
                   help="the server's --value; arms bit-identity checks "
                        "for both the loadgen and the replay recovery")
    p.add_argument("--loris", type=int, default=2,
                   help="slow-loris adversaries (default 2)")
    p.add_argument("--disconnects", type=int, default=2,
                   help="mid-handshake disconnect adversaries (default 2)")
    p.add_argument("--crashes", type=int, default=1,
                   help="post-result crash + redial adversaries (default 1)")
    p.add_argument("--p95-factor", type=float, default=1.2,
                   help="adversarial p95 must stay within this factor of "
                        "the no-adversary baseline (default 1.2)")
    p.add_argument("--p95-slack", type=float, default=0.25,
                   metavar="SECONDS",
                   help="additive p95 slack absorbing scheduler noise on "
                        "sub-100ms baselines (default 0.25)")
    p.add_argument("--byte-interval", type=float, default=0.2,
                   metavar="SECONDS",
                   help="slow-loris trickle rate (default one byte per "
                        "0.2s)")
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=run_chaos_cmd)
