"""Frozen configuration for the serve tier.

:class:`ServeConfig` gathers the ~20 tuning knobs that used to travel
as loose keyword arguments through ``GarbleServer``, ``AsyncEdge`` and
``serve/cli.py`` into one frozen dataclass: build it once (directly,
or from the CLI namespace via :meth:`ServeConfig.from_args`), hand it
to ``GarbleServer(programs, config=cfg)`` or
``repro.api.run(mode="serve", config=cfg)``, and read it back verbatim
from any ``op: "stats"`` reply (the ``config`` field of the snapshot).

:class:`RouterConfig` is the equivalent for the fleet router tier
(:mod:`repro.serve.router`): listener knobs shared with the edge plus
the routing-specific ones (shard poll cadence, failure threshold,
reconnect-stickiness table size).

Both are frozen — a running server's behavior is fully described by
the config it echoes, and nothing mutates it after construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Optional, Tuple

from .handshake import MAX_HELLO_BYTES

__all__ = ["ServeConfig", "RouterConfig", "parse_hostport"]


def parse_hostport(text: str) -> Tuple[str, int]:
    """``"127.0.0.1:9200"`` -> ``("127.0.0.1", 9200)``."""
    host, _, port = text.rpartition(":")
    if not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


@dataclass(frozen=True)
class ServeConfig:
    """Every tuning knob of one :class:`~repro.serve.server.GarbleServer`.

    Defaults match the historical keyword defaults, so
    ``GarbleServer(programs)`` and
    ``GarbleServer(programs, config=ServeConfig())`` are the same
    server.  The workload (``programs``) and instrumentation (``obs``)
    stay separate arguments — they are not tuning knobs.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    queue_depth: int = 8
    checkpoint_every: int = 4
    timeout: Optional[float] = 30.0
    resume_window: Optional[float] = None
    max_attempts: int = 6
    handshake_timeout: float = 5.0
    idle_timeout: Optional[float] = 60.0
    replay_ttl: float = 120.0
    replay_capacity: int = 256
    max_connections: int = 10_000
    max_hello_bytes: int = MAX_HELLO_BYTES
    ot: str = "simplest"
    ot_group: str = "modp512"
    engine: str = "compiled"
    heartbeat: Optional[float] = None
    max_sessions: Optional[int] = None
    pool: str = "auto"
    precompute: bool = True
    material_depth: int = 2
    #: Fleet flag: accept ``op: "adopt"`` hellos carrying another
    #: shard's handoff bundle (pickled session state — shards share a
    #: trust domain, so this stays off outside a fleet deployment) and
    #: honor ``op: "drain"`` requests naming handoff peers.
    fleet: bool = False

    @classmethod
    def from_args(cls, args) -> "ServeConfig":
        """Build from the ``repro serve`` argparse namespace."""
        host, port = parse_hostport(args.listen)
        return cls(
            host=host,
            port=port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            checkpoint_every=args.checkpoint_every,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            handshake_timeout=args.handshake_timeout,
            idle_timeout=args.idle_timeout,
            replay_ttl=args.replay_ttl,
            max_connections=args.max_connections,
            ot=args.ot,
            ot_group=args.ot_group,
            engine=args.engine,
            heartbeat=args.heartbeat,
            max_sessions=args.max_sessions,
            pool=args.pool,
            precompute=not args.no_precompute,
            material_depth=args.material_depth,
            fleet=getattr(args, "fleet", False),
        )

    def replace(self, **changes) -> "ServeConfig":
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Flat JSON-friendly dict — echoed under ``config`` in every
        ``op: "stats"`` snapshot."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of one :class:`~repro.serve.router.SessionRouter`."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Shards to route over, as ``[(host, port), ...]``.
    shards: Tuple[Tuple[str, int], ...] = ()
    handshake_timeout: float = 5.0
    idle_timeout: Optional[float] = 60.0
    max_hello_bytes: int = MAX_HELLO_BYTES
    max_connections: int = 10_000
    #: Seconds between background ``op: "stats"`` health polls.
    poll_interval: float = 1.0
    #: Consecutive failed polls before a shard is considered dead and
    #: taken out of the rendezvous ring.
    dead_after: int = 3
    #: Dial deadline for shard connections (proxy and polls).
    connect_timeout: float = 5.0
    #: Bounded session-id -> shard stickiness table (reconnects of a
    #: live session must land on the shard that holds its worker).
    route_table_size: int = 10_000

    @classmethod
    def from_args(cls, args) -> "RouterConfig":
        """Build from the ``repro router`` argparse namespace."""
        host, port = parse_hostport(args.listen)
        shards = tuple(parse_hostport(s) for s in (args.shard or ()))
        return cls(
            host=host,
            port=port,
            shards=shards,
            handshake_timeout=args.handshake_timeout,
            idle_timeout=args.idle_timeout,
            max_connections=args.max_connections,
            poll_interval=args.poll_interval,
            dead_after=args.dead_after,
            connect_timeout=args.connect_timeout,
        )

    def replace(self, **changes) -> "RouterConfig":
        return replace(self, **changes)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["shards"] = [list(s) for s in self.shards]
        return data
