"""Serve-layer control handshake: one hello, one welcome, then GC.

Before a connection joins the garbled-circuit protocol proper, the
evaluator introduces itself with a single ``serve-hello`` control
frame naming the *program* it wants garbled and its *session id*; the
server answers with one ``serve-welcome`` frame that either admits the
session (carrying the authoritative cycle count and checkpoint
cadence), routes a reconnect to its live session, or rejects it with a
structured status (``busy``, ``draining``, ``error``).  A hello may
also carry ``op: "stats"``, turning the connection into a one-shot
stats probe.

Two optional hello fields arm the serve layer's per-client caches:
``"client"`` names a stable client identity (sessions of one identity
may share cached key material; distinct identities never do), and
``"base_ot": True`` advertises that this client still holds the
receiver side of a previous session's base-OT phase.  When the server
runs extension OT its welcome answers with ``"base_ot": "cached"``
(it kept the matching sender side — both parties skip the base phase
and re-derive fresh pools under a session-unique PRG salt) or
``"fresh"`` (run the base phase again).  Absence of ``"base_ot"`` in
the welcome means the server predates the negotiation; the client
then behaves exactly as before.  Unknown hello fields are ignored, so
old and new peers interoperate in both directions.

The control frames ride the same wire format as everything else
(:mod:`repro.net.frame` + :mod:`repro.net.codec`) but are read with a
throwaway :class:`~repro.net.frame.FrameDecoder` *outside* any
:class:`~repro.net.transport.FramedEndpoint`: both sides exchange
exactly one frame each, so the per-direction sequence numbers of the
session endpoints created afterwards start fresh at 1 on both sides.
Bytes of the peer's *next* frame that the control read may have
already pulled off the link are preserved by returning them as a
leftover, which callers wrap into a
:class:`~repro.net.links.PrefacedLink`.

The server side parses hellos with :class:`HelloParser`, an
incremental, *bounded* state machine: it classifies every way an
adversarial client can fail the handshake — garbage bytes, a frame
that never completes, an oversized hello, a non-hello tag, a payload
that does not decode — into a :class:`HandshakeReject` with a stable
``kind``, so the edge can answer each with a structured
``serve-welcome`` reject and a counter instead of an exception on the
accept path.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

from ..gc.channel import ChannelClosed, ChannelTimeout, FrameCorruption
from ..net.codec import CodecError, decode, encode
from ..net.frame import (
    FRAME_ABORT,
    FRAME_DATA,
    FrameDecoder,
    encode_frame,
)
from ..net.links import Link, LinkClosed, LinkTimeout

#: Control-frame tags.  Sequence number 1 on both; each side sends at
#: most one control frame per connection, then hands the link to a
#: fresh FramedEndpoint.
HELLO = "serve-hello"
WELCOME = "serve-welcome"

#: Upper bound on one hello control frame, leftover included.  A real
#: hello is well under a kilobyte; anything growing past this is a
#: client streaming garbage (or a giant frame) at the handshake and is
#: rejected before it can hold buffer memory hostage.
MAX_HELLO_BYTES = 64 * 1024


class ServeError(Exception):
    """The server rejected the request (unknown program, bad hello,
    finished session, ...).  Not retryable."""


class ServerBusy(ServeError):
    """Admission control rejected the session: worker pool saturated
    and the accept queue is full (or the server is draining)."""

    def __init__(self, message: str, welcome: Optional[dict] = None) -> None:
        super().__init__(message)
        #: The structured ``serve-welcome`` reject payload.
        self.welcome = welcome or {}


class ResultPending(ServeError):
    """A result probe hit a session that is still running — retry
    after the welcome's ``retry_after_s``."""

    def __init__(self, message: str, welcome: Optional[dict] = None) -> None:
        super().__init__(message)
        self.welcome = welcome or {}


class HandshakeReject(Exception):
    """A hello failed to parse.  ``kind`` is the failure class the
    edge counts and reports: ``garbage`` (bytes that are not a frame),
    ``oversized`` (grew past :data:`MAX_HELLO_BYTES`), ``bad-tag``
    (first data frame is not a ``serve-hello``), ``malformed`` (the
    payload does not decode to a record) or ``aborted`` (the peer sent
    an abort frame instead of a hello)."""

    def __init__(self, kind: str, reason: str) -> None:
        super().__init__(f"{kind}: {reason}")
        self.kind = kind
        self.reason = reason


class HelloParser:
    """Incremental, bounded parser for one ``serve-hello`` frame.

    Feed raw chunks as they arrive; returns ``None`` while the hello
    is incomplete and ``(hello_dict, leftover_bytes)`` once it parsed.
    Heartbeat frames are skipped (a keepalive cannot desync the
    handshake); every adversarial input raises
    :class:`HandshakeReject` with its failure class.  After a reject
    the parser refuses further input.
    """

    def __init__(self, max_bytes: int = MAX_HELLO_BYTES) -> None:
        self._decoder = FrameDecoder()
        self._max_bytes = max_bytes
        self._seen = 0
        self._dead = False

    @property
    def started(self) -> bool:
        """Whether any bytes have arrived (arms the hello deadline)."""
        return self._seen > 0

    @property
    def pending_bytes(self) -> int:
        return self._decoder.pending_bytes

    def feed(self, data: bytes) -> Optional[Tuple[dict, bytes]]:
        if self._dead:
            raise HandshakeReject("garbage", "parser already rejected")
        self._seen += len(data)
        if self._seen > self._max_bytes:
            self._dead = True
            raise HandshakeReject(
                "oversized",
                f"hello exceeds {self._max_bytes} bytes "
                f"({self._seen} received)",
            )
        try:
            frames = self._decoder.feed(data)
        except FrameCorruption as exc:
            self._dead = True
            raise HandshakeReject("garbage", str(exc)) from exc
        for i, frame in enumerate(frames):
            if frame.ftype == FRAME_ABORT:
                self._dead = True
                raise HandshakeReject(
                    "aborted", "peer aborted during handshake"
                )
            if frame.ftype != FRAME_DATA:
                continue  # stray heartbeat
            if frame.tag != HELLO:
                self._dead = True
                raise HandshakeReject(
                    "bad-tag",
                    f"expected {HELLO!r}, got {frame.tag!r}",
                )
            try:
                payload = decode(frame.payload)
            except CodecError as exc:
                self._dead = True
                raise HandshakeReject(
                    "malformed",
                    f"hello payload does not decode: {exc}",
                ) from exc
            if not isinstance(payload, dict):
                self._dead = True
                raise HandshakeReject(
                    "malformed",
                    f"hello payload is {type(payload).__name__}, "
                    "expected a record",
                )
            leftover = b"".join(
                encode_frame(f.ftype, f.seq, f.tag, f.payload)
                for f in frames[i + 1:]
            ) + self._decoder.buffered
            return payload, leftover
        return None


def send_control(link: Link, tag: str, payload: Any) -> None:
    """Write one control frame to a raw link."""
    try:
        link.send_bytes(encode_frame(FRAME_DATA, 1, tag, encode(payload)))
    except LinkClosed as exc:
        raise ChannelClosed(f"connection lost: {exc}") from exc


def recv_control(
    link: Link, timeout: Optional[float] = None
) -> Tuple[str, Any, bytes]:
    """Read one control frame from a raw link.

    Returns ``(tag, payload, leftover)`` where ``leftover`` is any
    bytes past the frame that were already read off the link (the
    beginning of the peer's next frame — see module docstring).
    """
    decoder = FrameDecoder()
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ChannelTimeout(
                    f"no control frame within {timeout}s"
                )
        try:
            chunk = link.recv_bytes(timeout=remaining)
        except LinkTimeout as exc:
            raise ChannelTimeout(
                f"no control frame within {timeout}s"
            ) from exc
        if chunk == b"":
            raise ChannelClosed("connection closed during handshake")
        frames = decoder.feed(chunk)
        for i, frame in enumerate(frames):
            if frame.ftype == FRAME_ABORT:
                raise ChannelClosed("peer aborted during handshake")
            if frame.ftype != FRAME_DATA:
                continue  # a stray heartbeat cannot desync the control read
            try:
                payload = decode(frame.payload)
            except CodecError as exc:
                raise FrameCorruption(
                    f"control frame {frame.tag!r} does not decode: {exc}"
                ) from exc
            # One chunk can carry frames *past* the control frame (the
            # peer's first protocol frame rides the same TCP segment).
            # Re-serialize them — encode_frame is deterministic, so the
            # byte stream is reconstructed exactly — ahead of whatever
            # partial frame the decoder still buffers.
            leftover = b"".join(
                encode_frame(f.ftype, f.seq, f.tag, f.payload)
                for f in frames[i + 1:]
            ) + decoder.buffered
            return frame.tag, payload, leftover
