"""Fleet primitives: rendezvous routing and cross-shard aggregation.

A serve *fleet* is a set of independent :class:`~repro.serve.server.
GarbleServer` shards fronted by the :mod:`repro.serve.router` tier.
Two pure functions tie the tier together:

* :func:`rendezvous_select` — highest-random-weight (HRW) hashing over
  the live shard set.  Both the router (when routing a fresh session)
  and a draining shard (when picking the adoption peer for an
  interrupted session) call the *same* function keyed by the same
  program digest, so their choices agree deterministically without any
  coordination channel.  HRW gives minimal disruption: when a shard
  joins or leaves, only the keys owned by that shard move.

* :func:`aggregate_shard_stats` — folds per-shard ``op: "stats"``
  snapshots into the fleet-wide ``op: "fleet-stats"`` aggregate.

:class:`LocalFleet` is a test/bench helper that stands up N in-process
shards plus a router on loopback ports and tears them down together.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "rendezvous_select",
    "rendezvous_rank",
    "aggregate_shard_stats",
    "AGGREGATE_FIELDS",
    "LocalFleet",
]


def _score(shard: Tuple[str, int], key: str) -> int:
    """Deterministic HRW weight of ``shard`` for ``key``.

    blake2b over ``"host:port|key"`` — stable across processes and
    Python hash randomization, which matters because the router and
    the draining shard compute it independently.
    """
    host, port = shard
    blob = ("%s:%d|%s" % (host, int(port), key)).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(blob, digest_size=8).digest(), "big")


def rendezvous_rank(
    key: str, shards: Iterable[Tuple[str, int]]
) -> List[Tuple[str, int]]:
    """All shards ordered by descending HRW weight for ``key``."""
    pool = [(str(h), int(p)) for h, p in shards]
    pool.sort(key=lambda s: _score(s, key), reverse=True)
    return pool


def rendezvous_select(
    key: str, shards: Iterable[Tuple[str, int]]
) -> Optional[Tuple[str, int]]:
    """Pick the owning shard for ``key``, or ``None`` if no shards."""
    ranked = rendezvous_rank(key, shards)
    return ranked[0] if ranked else None


#: Counters summed across shards in the fleet-stats aggregate.  Kept to
#: the additive subset of the shard snapshot: gauges like queue_depth
#: or rates do not sum meaningfully.
AGGREGATE_FIELDS = (
    "accepted",
    "completed",
    "failed",
    "active",
    "queued",
    "rejected_busy",
    "rejected_error",
    "reconnects",
    "replay_hits",
    "replay_misses",
    "handed_off",
    "adopted",
)


def aggregate_shard_stats(snapshots: Sequence[dict]) -> Dict[str, int]:
    """Sum the additive counters over per-shard stats snapshots.

    Missing fields count as zero so a mixed-version fleet (one shard a
    release behind) still aggregates.  Adds ``shards`` (snapshot count)
    so callers can tell an empty aggregate from an empty fleet.
    """
    totals: Dict[str, int] = {field: 0 for field in AGGREGATE_FIELDS}
    for snap in snapshots:
        for field in AGGREGATE_FIELDS:
            value = snap.get(field)
            if isinstance(value, (int, float)):
                totals[field] += int(value)
    totals["shards"] = len(snapshots)
    return totals


class LocalFleet:
    """N in-process shards plus a router, for tests and benchmarks.

    Every shard serves the same program registry.  The shards run
    ``fleet=True`` so they honor drain/adopt hellos; the router polls
    them for health.  Use as a context manager::

        with LocalFleet(programs, shards=2) as fleet:
            run_registry_session(fleet.host, fleet.port, ...)
    """

    def __init__(
        self,
        programs: dict,
        shards: int = 2,
        host: str = "127.0.0.1",
        config=None,
        router_config=None,
        obs=None,
    ) -> None:
        # Imported lazily: server imports this module for the pure
        # helpers, and the router imports the server.
        from ..obs import NULL_OBS
        from .config import RouterConfig, ServeConfig
        from .router import SessionRouter
        from .server import GarbleServer

        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        base = config if config is not None else ServeConfig(pool="thread")
        base = base.replace(host=host, port=0, fleet=True)
        self.servers: List[GarbleServer] = []
        started: List[GarbleServer] = []
        router = None
        try:
            for _ in range(shards):
                server = GarbleServer(
                    programs, config=base, obs=obs or NULL_OBS
                )
                server.start()
                started.append(server)
            self.servers = started
            addrs = tuple((host, s.port) for s in started)
            rc = router_config if router_config is not None else RouterConfig()
            rc = rc.replace(host=host, port=0, shards=addrs)
            router = SessionRouter(rc, obs=obs or NULL_OBS)
            router.start()
        except BaseException:
            if router is not None:
                router.shutdown()
            for server in started:
                server.shutdown()
            raise
        self.router = router

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def shard_addrs(self) -> List[Tuple[str, int]]:
        return [(s.host, s.port) for s in self.servers]

    def shutdown(self) -> None:
        self.router.shutdown()
        for server in self.servers:
            server.shutdown()

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
