"""Key derivation for garbling.

The paper's implementations use fixed-key AES (AES-NI) as the circular
2-correlation-robust hash H(X, tweak) required by free-XOR and
half-gates [1, 15, 49].  Pure Python has no AES-NI, so we substitute
SHA-256 truncated to 128 bits, which provides the same interface and
(heuristically) the required correlation robustness.  Communication
costs — the paper's metric — are unaffected by the hash choice.
"""

from __future__ import annotations

import hashlib

#: Security parameter k: labels are 128-bit (Section 2.3).
LABEL_BITS = 128
LABEL_BYTES = LABEL_BITS // 8
LABEL_MASK = (1 << LABEL_BITS) - 1


class HashStats:
    """Cumulative garbling-hash invocation count.

    Hashing is one of the three cost centres (garbling, hashing,
    communication) the obs layer separates; each call costs one
    SHA-256 compression, so the count times a constant is the hash
    budget.  The counter is a plain attribute increment — cheap next
    to the hash itself — and approximate under concurrent garble/eval
    threads (each party's calls may interleave); profilers snapshot
    it before/after a run (see ``repro.core.protocol``).
    """

    __slots__ = ("calls",)

    def __init__(self) -> None:
        self.calls = 0


#: Process-wide hash call counter (monotonic; snapshot and diff).
HASH_STATS = HashStats()


def hash_label(label: int, tweak: int) -> int:
    """H(label, tweak) -> 128-bit integer.

    ``tweak`` is the unique per-half-gate index that makes the hash
    usable across gates (the ``j``/``j'`` of the half-gate scheme).
    """
    HASH_STATS.calls += 1
    data = label.to_bytes(LABEL_BYTES, "little") + (tweak & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    return int.from_bytes(hashlib.sha256(data).digest()[:LABEL_BYTES], "little")


def hash_labels(pairs) -> list:
    """Batched ``H`` over ``(label, tweak)`` pairs.

    Produces exactly the same values as :func:`hash_label` on each
    pair, but in one tight loop with the ``hashlib`` constructor and
    conversion callables hoisted out, and a single counter update for
    the whole batch.  The garbling kernel (:mod:`repro.gc.garble`)
    issues its per-gate hashes through this so each garbled gate is
    one ``hashlib`` call region instead of interleaved point calls.
    """
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    nbytes = LABEL_BYTES
    out = []
    append = out.append
    for label, tweak in pairs:
        data = label.to_bytes(nbytes, "little") + (
            tweak & 0xFFFFFFFFFFFFFFFF
        ).to_bytes(8, "little")
        append(from_bytes(sha256(data).digest()[:nbytes], "little"))
    HASH_STATS.calls += len(out)
    return out


def hash_labels2(l0: int, t0: int, l1: int, t1: int):
    """Unrolled 2-point batch: ``(H(l0,t0), H(l1,t1))``.

    The evaluator's per-gate hot path — two hash points per garbled
    gate — called once per category-iv gate per cycle, so the generic
    batch's iterator protocol and list building are worth shaving.
    """
    HASH_STATS.calls += 2
    nbytes = LABEL_BYTES
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    return (
        from_bytes(sha256(
            l0.to_bytes(nbytes, "little")
            + (t0 & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        ).digest()[:nbytes], "little"),
        from_bytes(sha256(
            l1.to_bytes(nbytes, "little")
            + (t1 & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        ).digest()[:nbytes], "little"),
    )


def hash_labels4(l0: int, t0: int, l1: int, t1: int,
                 l2: int, t2: int, l3: int, t3: int):
    """Unrolled 4-point batch — the garbler's half-gate point set."""
    HASH_STATS.calls += 4
    nbytes = LABEL_BYTES
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    return (
        from_bytes(sha256(
            l0.to_bytes(nbytes, "little")
            + (t0 & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        ).digest()[:nbytes], "little"),
        from_bytes(sha256(
            l1.to_bytes(nbytes, "little")
            + (t1 & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        ).digest()[:nbytes], "little"),
        from_bytes(sha256(
            l2.to_bytes(nbytes, "little")
            + (t2 & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        ).digest()[:nbytes], "little"),
        from_bytes(sha256(
            l3.to_bytes(nbytes, "little")
            + (t3 & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        ).digest()[:nbytes], "little"),
    )


def kdf_bytes(secret: bytes, context: bytes, nbytes: int) -> bytes:
    """Derive ``nbytes`` of key material (used by the OT layer)."""
    out = b""
    counter = 0
    while len(out) < nbytes:
        out += hashlib.sha256(
            secret + context + counter.to_bytes(4, "little")
        ).digest()
        counter += 1
    return out[:nbytes]
