"""Offline pre-garbling: record a garbler transcript, replay it online.

ARM2GC's succinctness argument rests on the processor netlist being
*public and fixed* — which is exactly what makes its category-iv
garbled tables precomputable.  During protocol cycles the garbler only
ever *pushes* label material: her ``alice-label`` frames, the message
pairs ``(zero, zero ^ delta)`` she feeds the OT for Bob's input bits,
and one ``tables`` batch per cycle.  None of it depends on anything
the evaluator sends (the OT itself is interactive, but the garbler's
*inputs* to it are not), so the entire per-cycle transcript can be
produced in an **offline phase** before any client connects and
replayed verbatim in the **online phase**, which then costs only the
OT protocol plus the evaluator's work.

Three pieces implement the split:

* :func:`build_material` runs a real :class:`~repro.core.protocol.
  GarblerParty` against a recording channel and a recording OT,
  capturing the ordered per-cycle event stream into a
  :class:`GarbledMaterial` bundle keyed by (netlist digest, cycle
  index, delta epoch).
* :class:`MaterialCache` is a bounded per-program pool of such
  bundles with explicit **delta-epoch rotation**: every bundle is
  garbled under a fresh delta and handed out exactly once.  Reusing a
  delta across evaluator identities would let two colluding (or one
  curious repeat) evaluator(s) pair up wire labels and recover delta —
  the reuse-soundness rules from the CRGC / "Reuse It Or Lose It"
  line of work, enforced structurally here by single-use acquisition.
* :class:`MaterialGarblerParty` is a drop-in for ``GarblerParty`` in
  a :class:`~repro.net.session.ResumableSession`: it replays the
  recorded events through a live channel and a live OT, checkpoints
  carry the material epoch, and ``restore`` refuses to cross epochs.

The recorded transcript replays the *same* label bytes on every
(re)send of a cycle, matching the garbled tables; to the evaluator
this is indistinguishable from fresh garbling, and the resume layer
already rolls both parties back to a common cycle so replays stay
aligned.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .channel import ProtocolDesync
from .ot import OTSender
from .ot_extension import OTExtensionSender


class MaterialEpochMismatch(ProtocolDesync):
    """A resume tried to restore a checkpoint from a different material
    epoch (or circuit digest).  Fatal by design: stitching two deltas
    into one session would desync the evaluator and, worse, could leak
    both labels of a wire under one delta."""


# ---------------------------------------------------------------------------
# Recording: a fake channel and a fake OT that capture the transcript.
# ---------------------------------------------------------------------------


class _Recorder:
    """Accumulates the garbler's ordered outbound events.

    Events before the first cycle (flip-flop / macro init labels,
    resolved while the engine is constructed during ``attach``) land in
    the *init bucket*; after that, each ``tables`` send closes one
    cycle bucket.
    """

    def __init__(self) -> None:
        self.init_events: List[tuple] = []
        self.cycle_events: List[List[tuple]] = []
        self.cycle_tables: List[Tuple[List[int], bytes]] = []
        self._events: List[tuple] = []
        self._init_open = True

    def add(self, event: tuple) -> None:
        self._events.append(event)

    def close_init(self) -> None:
        assert self._init_open, "init bucket already closed"
        self.init_events = self._events
        self._events = []
        self._init_open = False

    def close_cycle(self, keys: List[int], blob: bytes) -> None:
        assert not self._init_open, "tables sent before attach completed"
        self.cycle_events.append(self._events)
        self.cycle_tables.append((list(keys), blob))
        self._events = []


class _RecordingEndpoint:
    """Channel stand-in for the offline run: captures sends, forbids
    receives (the garbler never receives during cycles)."""

    def __init__(self, recorder: _Recorder) -> None:
        self._rec = recorder

    def send(self, tag: str, payload: Any) -> None:
        if tag == "alice-label":
            self._rec.add(("alice", bytes(payload)))
        elif tag == "tables":
            keys, blob = payload
            self._rec.close_cycle(keys, blob)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unexpected offline-phase send {tag!r}")

    def recv(self, tag: str, timeout: Optional[float] = None) -> Any:
        raise AssertionError(
            f"offline garbling tried to receive {tag!r}; the garbler "
            "must not depend on the evaluator during cycles"
        )


class _RecordingOT:
    """OT stand-in: captures the garbler's message pairs."""

    def __init__(self, recorder: _Recorder) -> None:
        self._rec = recorder
        self.count = 0

    def send(self, m0: int, m1: int) -> None:
        self._rec.add(("ot", m0, m1))
        self.count += 1

    def rebind(self, chan) -> None:  # pragma: no cover - never reconnects
        pass


# ---------------------------------------------------------------------------
# The bundle.
# ---------------------------------------------------------------------------


@dataclass
class GarbledMaterial:
    """One pre-garbled transcript: (netlist digest, cycles, delta epoch).

    ``output_states`` holds the garbler's final per-output decode info:
    an ``int`` for public outputs or ``(zero_label, flip)`` for secret
    ones.  ``stats`` is the engine's final :class:`~repro.core.stats.
    RunStats` — replayed sessions report gate counts bit-identical to
    fresh garbling because they *are* the fresh run's counts.
    """

    net: Any
    digest: str
    cycles: int
    epoch: int
    delta: int
    init_events: List[tuple]
    cycle_events: List[List[tuple]]
    cycle_tables: List[Tuple[List[int], bytes]]
    output_states: List[Any]
    stats: Any
    tables_sent: int
    build_seconds: float


def build_material(
    net,
    cycles: int,
    *,
    alice: Sequence[int] = (),
    alice_init: Sequence[int] = (),
    public: Sequence[int] = (),
    public_init: Sequence[int] = (),
    ot_group: str = "modp512",
    ot: str = "simplest",
    engine: str = "compiled",
    epoch: int = 0,
    rng=None,
) -> GarbledMaterial:
    """Offline phase: garble every cycle of ``net`` under a fresh delta.

    Runs the real garbler (same engine, same backend, same category
    decisions) against recording stand-ins, so the captured transcript
    is byte-for-byte what an online session must send.  ``alice`` /
    ``alice_init`` are the garbler's operand sources exactly as a
    :class:`~repro.serve.server.ServeProgram` holds them.
    """
    # Imported lazily: core imports gc, not the other way around.
    from ..core.protocol import GarblerParty, _expand_bits
    from ..net.session import net_digest

    t0 = time.perf_counter()
    recorder = _Recorder()
    recording_ot = _RecordingOT(recorder)
    party = GarblerParty(
        net,
        cycles,
        _expand_bits(net, "alice", alice, alice_init, cycles),
        public=public,
        public_init=public_init,
        ot_group=ot_group,
        ot=ot,
        rng=rng,
        engine=engine,
        ot_factory=lambda chan: recording_ot,
    )
    party.attach(_RecordingEndpoint(recorder))
    recorder.close_init()  # init labels resolve during attach
    party.run_cycles()
    if len(recorder.cycle_tables) != cycles:  # pragma: no cover - defensive
        raise AssertionError(
            f"recorded {len(recorder.cycle_tables)} table batches for "
            f"{cycles} cycles"
        )
    output_states = []
    for s in party.engine.output_states():
        output_states.append(s if type(s) is int else (s[0], s[1]))
    return GarbledMaterial(
        net=net,
        digest=net_digest(net, cycles),
        cycles=cycles,
        epoch=epoch,
        delta=party.backend.delta,
        init_events=recorder.init_events,
        cycle_events=recorder.cycle_events,
        cycle_tables=recorder.cycle_tables,
        output_states=output_states,
        stats=party.engine.stats,
        tables_sent=party.backend.tables_sent,
        build_seconds=time.perf_counter() - t0,
    )


# ---------------------------------------------------------------------------
# The bounded per-program cache with delta-epoch rotation.
# ---------------------------------------------------------------------------


class MaterialCache:
    """Bounded pool of single-use :class:`GarbledMaterial` epochs.

    Rotation rule: every :meth:`acquire` hands out a *distinct* epoch
    (a distinct delta) and records which evaluator identity consumed
    it; an epoch is never handed out twice, so no delta can be
    observed by two evaluator identities — or twice by one.  The pool
    is refilled with freshly-garbled epochs (``refill``), normally off
    the online path; an empty pool falls back to garbling synchronously
    (counted as a miss).
    """

    def __init__(
        self,
        net,
        cycles: int,
        *,
        alice: Sequence[int] = (),
        alice_init: Sequence[int] = (),
        public: Sequence[int] = (),
        public_init: Sequence[int] = (),
        ot_group: str = "modp512",
        ot: str = "simplest",
        engine: str = "compiled",
        depth: int = 2,
        rng=None,
    ) -> None:
        if depth < 1:
            raise ValueError("material cache depth must be >= 1")
        self._build_kwargs = dict(
            alice=alice,
            alice_init=alice_init,
            public=public,
            public_init=public_init,
            ot_group=ot_group,
            ot=ot,
            engine=engine,
        )
        self.net = net
        self.cycles = cycles
        self.depth = depth
        self._rng = rng
        self._pool: deque = deque()
        self._lock = threading.Lock()
        self._next_epoch = 0
        self.hits = 0
        self.misses = 0
        self.built = 0
        self.build_seconds = 0.0
        #: epoch -> evaluator identity that consumed it (audit trail for
        #: the rotation rule; ``None`` for anonymous sessions).
        self.assignments: Dict[int, Any] = {}

    def _build_one(self) -> GarbledMaterial:
        with self._lock:
            epoch = self._next_epoch
            self._next_epoch += 1
        material = build_material(
            self.net,
            self.cycles,
            epoch=epoch,
            rng=self._rng,
            **self._build_kwargs,
        )
        with self._lock:
            self.built += 1
            self.build_seconds += material.build_seconds
        return material

    def prewarm(self, depth: Optional[int] = None) -> int:
        """Fill the pool up to ``depth`` epochs; returns epochs built."""
        target = self.depth if depth is None else min(depth, self.depth)
        built = 0
        while True:
            with self._lock:
                if len(self._pool) >= target:
                    return built
            material = self._build_one()
            with self._lock:
                self._pool.append(material)
            built += 1

    def refill(self, low_water: Optional[int] = None) -> int:
        """Top the pool back up, but only once it has drained below the
        low-water mark (default ``depth // 2``) — a freshly-consumed
        epoch does not force a garble onto the next session's path."""
        low = max(1, self.depth // 2 if low_water is None else low_water)
        with self._lock:
            if len(self._pool) >= low:
                return 0
        return self.prewarm()

    def acquire(self, identity: Any = None) -> Tuple[GarbledMaterial, bool]:
        """Pop one single-use epoch for ``identity``.

        Returns ``(material, hit)`` where ``hit`` says whether the pool
        had a pre-garbled epoch ready (otherwise one was garbled
        synchronously).
        """
        with self._lock:
            material = self._pool.popleft() if self._pool else None
        hit = material is not None
        if material is None:
            material = self._build_one()
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            if material.epoch in self.assignments:  # pragma: no cover
                raise AssertionError(
                    f"delta epoch {material.epoch} handed out twice"
                )
            self.assignments[material.epoch] = identity
        return material, hit

    def __len__(self) -> int:
        with self._lock:
            return len(self._pool)


# ---------------------------------------------------------------------------
# The online replay party.
# ---------------------------------------------------------------------------


class _ReplayBackendView:
    """The slice of backend state the session layer reads."""

    def __init__(self, delta: int) -> None:
        self.delta = delta
        self.tables_sent = 0
        self._ot = None


class _ReplayEngineView:
    """The slice of engine state the session layer reads."""

    def __init__(self, stats: Any, cycles: int) -> None:
        self.stats = stats
        self.cycles = cycles


class MaterialGarblerParty:
    """Garbler party that replays a :class:`GarbledMaterial` bundle.

    Drop-in for :class:`~repro.core.protocol.GarblerParty` inside a
    :class:`~repro.net.session.ResumableSession`: the online path sends
    the recorded label frames and table batches and runs only the
    *live* OT protocol for Bob's input bits.  Checkpoints record the
    material epoch and digest; :meth:`restore` raises
    :class:`MaterialEpochMismatch` on any cross-epoch restore attempt.
    """

    role = "garbler"

    def __init__(
        self,
        material: GarbledMaterial,
        *,
        ot_group: str = "modp512",
        ot: str = "simplest",
        ot_factory=None,
        obs=None,
        resume: bool = False,
    ) -> None:
        self.material = material
        self.net = material.net
        self.cycles = material.cycles
        self.material_epoch = material.epoch
        self._ot_group = ot_group
        self._ot_kind = ot
        self._ot_factory = ot_factory
        self.obs = obs
        self.chan = None
        self._ot = None
        #: ``resume=True`` marks a party adopting a handed-off session:
        #: the evaluator already holds the init labels (they are in its
        #: restored memo), so the first attach must NOT replay them —
        #: an unsolicited ``alice-label`` frame would desync the
        #: peer's resume negotiation.
        self._resume = resume
        self._cursor = 0  # completed cycles
        self.backend = _ReplayBackendView(material.delta)
        self.engine = _ReplayEngineView(material.stats, material.cycles)

    # -- plumbing ------------------------------------------------------------

    def _make_ot(self, chan):
        if self._ot_factory is not None:
            return self._ot_factory(chan)
        if self._ot_kind == "extension":
            return OTExtensionSender(chan, group=self._ot_group)
        return OTSender(chan, group=self._ot_group)

    def _replay(self, events: List[tuple]) -> None:
        chan = self.chan
        ot = self._ot
        for ev in events:
            if ev[0] == "alice":
                chan.send("alice-label", ev[1])
            else:
                ot.send(ev[1], ev[2])

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._cursor

    def attach(self, chan) -> None:
        """Bind (or re-bind, after a reconnect) the transport."""
        self.chan = chan
        if self._ot is None:
            self._ot = self._make_ot(chan)
            self.backend._ot = self._ot
            if not self._resume:
                # Init labels (flip-flop / macro initial state) go out
                # as part of the first attach, exactly where a fresh
                # party resolves them while constructing its engine.
                self._replay(self.material.init_events)
        else:
            self._ot.rebind(chan)

    def run_cycles(self, on_boundary=None) -> None:
        material = self.material
        while self._cursor < self.cycles:
            i = self._cursor
            self._replay(material.cycle_events[i])
            keys, blob = material.cycle_tables[i]
            self.chan.send("tables", (list(keys), blob))
            self.backend.tables_sent += len(keys)
            self._cursor += 1
            if on_boundary is not None:
                on_boundary(self._cursor)

    def finish(self) -> List[int]:
        """Decode Bob's output labels against the recorded states
        (mirrors :meth:`GarblerParty.finish`)."""
        chan = self.chan
        material = self.material
        payload = chan.recv("outputs")
        if len(payload) != len(material.output_states):
            raise AssertionError("output arity desync between parties")
        outputs: List[int] = []
        delta = material.delta
        for got, s in zip(payload, material.output_states):
            if got[0] == "pub":
                if type(s) is not int or s != got[1]:
                    raise AssertionError("public output desync between parties")
                outputs.append(s)
            else:
                _, label_raw, bob_flip = got
                bob_label = int.from_bytes(label_raw, "little")
                zero, flip = s
                if bob_flip != flip:
                    raise AssertionError("flip-bit desync between parties")
                if bob_label == zero:
                    raw = 0
                elif bob_label == zero ^ delta:
                    raw = 1
                else:
                    raise AssertionError("Bob returned an unknown output label")
                outputs.append(raw ^ flip)
        # Same stash as GarblerParty.finish: the result survives a Bob
        # that dies between here and the goodbye, so the serve layer
        # can park it for redial replay.
        self.last_outputs = list(outputs)
        chan.send("result", outputs)
        chan.recv("bye")
        return outputs

    # -- resume hooks --------------------------------------------------------

    def snapshot(self) -> dict:
        """Freeze replay progress; the epoch rides in every checkpoint."""
        return {
            "epoch": self.material.epoch,
            "digest": self.material.digest,
            "cycle": self._cursor,
            "tables_sent": self.backend.tables_sent,
            "ot": self._ot.snapshot(),
        }

    def restore(self, snap: dict) -> None:
        if (
            snap["epoch"] != self.material.epoch
            or snap["digest"] != self.material.digest
        ):
            raise MaterialEpochMismatch(
                f"checkpoint is for material epoch {snap['epoch']} "
                f"(digest {snap['digest']}), party holds epoch "
                f"{self.material.epoch} (digest {self.material.digest})"
            )
        self._cursor = snap["cycle"]
        self.backend.tables_sent = snap["tables_sent"]
        self._ot.restore(snap["ot"])
