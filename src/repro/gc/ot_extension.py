"""IKNP oblivious-transfer extension (semi-honest).

Public-key OT costs two exponentiations per transferred bit; with a
garbled processor whose inputs can be thousands of bits, real protocols
use *OT extension*: :math:`\\kappa` base OTs (here the DH OT of
:mod:`repro.gc.ot`) are stretched into arbitrarily many OTs using only
symmetric primitives [Ishai-Kilian-Nissim-Petrank].  This matches the
paper's stance that its underlying GC protocol inherits the standard
optimizations.

Protocol sketch (semi-honest IKNP, sender S, receiver R with choice
bits :math:`r`):

1. S picks :math:`s \\in \\{0,1\\}^{\\kappa}` and plays *receiver* in
   :math:`\\kappa` base OTs with choices :math:`s_i`, obtaining one
   seed of each of R's seed pairs :math:`(k_i^0, k_i^1)`.
2. R expands both seeds into length-:math:`m` columns
   :math:`t_i = G(k_i^0)` and sends
   :math:`u_i = G(k_i^0) \\oplus G(k_i^1) \\oplus r`.
3. S forms columns :math:`q_i = G(k_i^{s_i}) \\oplus s_i u_i`; row
   :math:`j` then satisfies :math:`q_j = t_j \\oplus r_j s`.
4. For OT :math:`j` with messages :math:`(m_0, m_1)`: S sends
   :math:`y_b = m_b \\oplus H(j, q_j \\oplus b\\,s)`; R recovers
   :math:`m_{r_j} = y_{r_j} \\oplus H(j, t_j)`.

The pool produces *random* OTs which are derandomized per use (one
choice-correction bit from R, two masked messages from S), giving the
same one-at-a-time interface as :class:`repro.gc.ot.OTSender` — a
drop-in for the protocol backends via ``ot="extension"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .channel import Endpoint
from .hashing import LABEL_BYTES, LABEL_MASK, hash_labels, kdf_bytes
from .ot import OTReceiver, OTSender

KAPPA = 128  #: security parameter / number of base OTs


def session_salt(session_id: str) -> bytes:
    """PRG salt prefix binding an extension run to one session.

    Base-OT seeds may be reused across a client's sessions (semi-honest
    reuse is sound: the seeds never leave either party), but the PRG
    expansion must differ per session or the t/u columns — and hence
    the pool pads — would repeat verbatim.  Both parties derive the
    salt from the session id agreed in the serve handshake.  The ``:``
    keeps the namespace disjoint from the default ``b"iknp" + batch``
    salts, which are all-digit suffixed.
    """
    return b"iknp:" + session_id.encode("utf-8")


def _prg(seed: int, n_bits: int, salt: bytes) -> int:
    """Expand a seed into an ``n_bits`` column (as a big int)."""
    nbytes = (n_bits + 7) // 8
    data = kdf_bytes(seed.to_bytes(LABEL_BYTES, "little"), salt, nbytes)
    return int.from_bytes(data, "little") & ((1 << n_bits) - 1)


#: byte -> spread int lookup tables, keyed by column count (bit k of
#: the byte lands at bit ``k * ncols`` of the table entry).
_SPREAD_TABLES: Dict[int, List[int]] = {}


def _spread_table(ncols: int) -> List[int]:
    table = _SPREAD_TABLES.get(ncols)
    if table is None:
        table = []
        for byte in range(256):
            v = 0
            for k in range(8):
                if (byte >> k) & 1:
                    v |= 1 << (k * ncols)
            table.append(v)
        _SPREAD_TABLES[ncols] = table
    return table


def _transpose_columns(cols: List[int], n_rows: int) -> List[int]:
    """Columns (one int per column, bit j = row j) -> per-row ints.

    Byte-table block transpose: each column is split into bytes, and a
    256-entry table spreads byte bit ``k`` to bit ``k * ncols`` so one
    lookup places eight row-bits of a column at once.  A block of
    eight rows then accumulates as one big int and is sliced back into
    the per-row ints, replacing the per-bit O(kappa * m) loop.
    """
    ncols = len(cols)
    if ncols == 0 or n_rows == 0:
        return [0] * n_rows
    table = _spread_table(ncols)
    nbytes = (n_rows + 7) // 8
    col_mask = (1 << n_rows) - 1
    col_bytes = [(c & col_mask).to_bytes(nbytes, "little") for c in cols]
    row_mask = (1 << ncols) - 1
    rows: List[int] = []
    for b in range(nbytes):
        chunk = 0
        for i in range(ncols):
            y = col_bytes[i][b]
            if y:
                chunk |= table[y] << i
        for k in range(min(8, n_rows - 8 * b)):
            rows.append((chunk >> (k * ncols)) & row_mask)
    return rows


class OTExtensionSender:
    """Sender side: extends base OTs into a pool of random OTs."""

    def __init__(
        self, chan: Endpoint, pool_size: int = 256, group: str = "modp512",
        rng=None, base: Optional[Tuple[int, List[int]]] = None,
        salt: bytes = b"iknp",
    ) -> None:
        import secrets

        self.chan = chan
        self.pool_size = pool_size
        self._rng = rng
        rand = rng.getrandbits if rng else secrets.randbits
        self._base = OTReceiver(chan, group=group)
        self._pool: List[Tuple[int, int]] = []  # random (x0, x1) pairs
        self._salt = bytes(salt)
        if base is not None:
            # Reuse base material from an earlier session with the same
            # peer: (s, seeds).  The peer must agree (negotiated in the
            # serve handshake) and the salt must be session-unique.
            self._s, seeds = base
            self._seeds: Optional[List[int]] = list(seeds)
        else:
            self._s = rand(KAPPA)
            self._seeds = None
        self._batch = 0
        self.count = 0

    def _base_phase(self) -> None:
        """Run the kappa base OTs (sender acts as base *receiver*)."""
        self._seeds = [
            self._base.receive((self._s >> i) & 1) for i in range(KAPPA)
        ]

    def export_base(self) -> Optional[Tuple[int, List[int]]]:
        """Base material for reuse, or ``None`` if no base phase ran."""
        if self._seeds is None:
            return None
        return (self._s, list(self._seeds))

    def _extend(self) -> None:
        if self._seeds is None:
            self._base_phase()
        m = self.pool_size
        col_bytes = (m + 7) // 8
        salt = self._salt + b"%d" % self._batch
        self._batch += 1
        # One fixed-width blob: KAPPA columns of (m+7)//8 bytes each.
        u_blob = self.chan.recv("otx-u")
        us = [
            int.from_bytes(u_blob[i * col_bytes : (i + 1) * col_bytes], "little")
            for i in range(KAPPA)
        ]
        cols = []
        for i in range(KAPPA):
            g = _prg(self._seeds[i], m, salt)
            if (self._s >> i) & 1:
                g ^= us[i]
            cols.append(g)
        rows = _transpose_columns(cols, m)
        # Tweak domain disjoint from the garbler's (which uses 2*gid
        # and 2*gid+1 below 2^62).  The whole pool hashes as one
        # batch — 2m points in one tight hash_labels sweep instead of
        # 2m point calls.
        t0 = (1 << 62) + self.count
        s = self._s
        h0 = hash_labels((q, t0 + j) for j, q in enumerate(rows))
        h1 = hash_labels((q ^ s, t0 + j) for j, q in enumerate(rows))
        self._pool = [
            (x0 & LABEL_MASK, x1 & LABEL_MASK) for x0, x1 in zip(h0, h1)
        ]

    def send(self, m0: int, m1: int) -> None:
        """Obliviously transfer one of two 128-bit messages."""
        if not self._pool:
            self._extend()
        x0, x1 = self._pool.pop()
        d = self.chan.recv("otx-d")
        # Receiver knows x_c where c = b ^ d; align pads so that
        # e_b = m_b ^ x_{b^d}.
        if d:
            x0, x1 = x1, x0
        e0 = (m0 ^ x0) & LABEL_MASK
        e1 = (m1 ^ x1) & LABEL_MASK
        self.chan.send(
            "otx-e",
            (
                e0.to_bytes(LABEL_BYTES, "little"),
                e1.to_bytes(LABEL_BYTES, "little"),
            ),
        )
        self.count += 1

    # -- resume hooks --------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint the extension progress (pool, batch, counters).
        ``s`` (the column-choice secret) rides along so a checkpoint
        restored into a fresh sender instance — serve-fleet session
        handoff — extends against the receiver's original base view."""
        return {
            "seeds": None if self._seeds is None else list(self._seeds),
            "pool": list(self._pool),
            "batch": self._batch,
            "count": self.count,
            "base": self._base.snapshot(),
            "s": self._s,
        }

    def restore(self, snap: dict) -> None:
        self._seeds = None if snap["seeds"] is None else list(snap["seeds"])
        self._pool = list(snap["pool"])
        self._batch = snap["batch"]
        self.count = snap["count"]
        self._base.restore(snap["base"])
        s = snap.get("s")
        if s is not None:
            self._s = s

    def rebind(self, chan) -> None:
        self.chan = chan
        self._base.rebind(chan)


class OTExtensionReceiver:
    """Receiver side of the IKNP extension."""

    def __init__(
        self, chan: Endpoint, pool_size: int = 256, group: str = "modp512",
        rng=None, base: Optional[List[Tuple[int, int]]] = None,
        salt: bytes = b"iknp",
    ) -> None:
        import secrets

        self.chan = chan
        self.pool_size = pool_size
        self._rand = rng.getrandbits if rng else secrets.randbits
        self._base = OTSender(chan, group=group)
        self._seed_pairs: Optional[List[Tuple[int, int]]] = (
            None if base is None else [tuple(p) for p in base]
        )
        self._pool: List[Tuple[int, int]] = []  # (choice bit c, x_c)
        self._salt = bytes(salt)
        self._batch = 0
        self.count = 0

    def _base_phase(self) -> None:
        self._seed_pairs = []
        for _ in range(KAPPA):
            k0 = self._rand(128)
            k1 = self._rand(128)
            self._seed_pairs.append((k0, k1))
            self._base.send(k0, k1)

    def export_base(self) -> Optional[List[Tuple[int, int]]]:
        """Base material for reuse, or ``None`` if no base phase ran."""
        if self._seed_pairs is None:
            return None
        return [tuple(p) for p in self._seed_pairs]

    def _extend(self) -> None:
        if self._seed_pairs is None:
            self._base_phase()
        m = self.pool_size
        salt = self._salt + b"%d" % self._batch
        self._batch += 1
        r = self._rand(m)  # random choice bits for the pool
        col_bytes = (m + 7) // 8
        t_cols = []
        u_parts = []
        for k0, k1 in self._seed_pairs:
            t = _prg(k0, m, salt)
            u = t ^ _prg(k1, m, salt) ^ r
            t_cols.append(t)
            u_parts.append(u.to_bytes(col_bytes, "little"))
        self.chan.send("otx-u", b"".join(u_parts))
        rows = _transpose_columns(t_cols, m)
        # Same batching as the sender: the pool's m points hash in one
        # hash_labels sweep.
        t0 = (1 << 62) + self.count
        hs = hash_labels((t, t0 + j) for j, t in enumerate(rows))
        self._pool = [
            ((r >> j) & 1, h & LABEL_MASK) for j, h in enumerate(hs)
        ]

    def receive(self, choice: int) -> int:
        """Receive the message selected by ``choice`` (0 or 1)."""
        if not self._pool:
            self._extend()
        c, xc = self._pool.pop()
        d = (choice ^ c) & 1
        self.chan.send("otx-d", d)
        e0, e1 = self.chan.recv("otx-e")
        e = int.from_bytes(e1 if choice else e0, "little")
        self.count += 1
        return (e ^ xc) & LABEL_MASK

    # -- resume hooks --------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "seed_pairs": (
                None if self._seed_pairs is None else list(self._seed_pairs)
            ),
            "pool": list(self._pool),
            "batch": self._batch,
            "count": self.count,
            "base": self._base.snapshot(),
        }

    def restore(self, snap: dict) -> None:
        self._seed_pairs = (
            None if snap["seed_pairs"] is None else list(snap["seed_pairs"])
        )
        self._pool = list(snap["pool"])
        self._batch = snap["batch"]
        self.count = snap["count"]
        self._base.restore(snap["base"])

    def rebind(self, chan) -> None:
        self.chan = chan
        self._base.rebind(chan)
