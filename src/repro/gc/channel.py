"""In-memory duplex channel with byte accounting.

The two parties of the protocol (threads in the same process) exchange
messages through a pair of unbounded queues.  Every message declares
its wire size so the harness can report communication — the GC
bottleneck [7] — in bytes, not just in garbled-table counts.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class ChannelClosed(Exception):
    """Raised when receiving from a channel whose peer has aborted."""


_SENTINEL = object()


@dataclass
class ChannelStats:
    """Bytes and message counts in one direction."""

    messages: int = 0
    payload_bytes: int = 0

    def record(self, nbytes: int) -> None:
        self.messages += 1
        self.payload_bytes += nbytes


class Endpoint:
    """One side of a duplex channel."""

    def __init__(self, out_q: "queue.Queue", in_q: "queue.Queue", sent: ChannelStats) -> None:
        self._out = out_q
        self._in = in_q
        self.sent = sent

    def send(self, tag: str, payload: Any, nbytes: int) -> None:
        """Send a message; ``nbytes`` is its declared wire size."""
        self.sent.record(nbytes)
        self._out.put((tag, payload))

    def recv(self, expected_tag: str, timeout: Optional[float] = 60.0) -> Any:
        """Receive the next message, asserting its tag matches."""
        try:
            item = self._in.get(timeout=timeout)
        except queue.Empty as exc:
            raise ChannelClosed(
                f"timed out waiting for {expected_tag!r}"
            ) from exc
        if item is _SENTINEL:
            raise ChannelClosed("peer aborted")
        tag, payload = item
        if tag != expected_tag:
            raise ChannelClosed(
                f"protocol desync: expected {expected_tag!r}, got {tag!r}"
            )
        return payload

    def abort(self) -> None:
        """Wake up a peer blocked on ``recv`` after a local failure."""
        self._out.put(_SENTINEL)


def channel_pair() -> Tuple[Endpoint, Endpoint]:
    """Create the two connected endpoints (alice_end, bob_end)."""
    a2b: "queue.Queue" = queue.Queue()
    b2a: "queue.Queue" = queue.Queue()
    alice = Endpoint(a2b, b2a, ChannelStats())
    bob = Endpoint(b2a, a2b, ChannelStats())
    return alice, bob
