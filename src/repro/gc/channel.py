"""In-memory duplex channel with byte and wait-time accounting.

The two parties of the protocol (threads in the same process) exchange
messages through a pair of unbounded queues.  Every message declares
its wire size so the harness can report communication — the GC
bottleneck [7] — in bytes, not just in garbled-table counts; the
receive path additionally accounts the time spent blocked on the peer
(``channel.wait``), which is where pipelining wins show up.

Failure modes are distinguished by exception type:

* :class:`ChannelClosed` — the peer aborted (or, with an opt-in
  timeout, is presumed dead): :class:`ChannelTimeout` narrows it.
* :class:`ProtocolDesync` — a message arrived with the wrong tag: the
  two state machines disagree.  This is a protocol *bug*, not a peer
  failure; the receiver aborts the peer before raising so the other
  side does not stay blocked forever.

By default ``recv`` blocks indefinitely: the channel is in-process and
the abort mechanism (not a timer) unblocks the survivor on failure.
Large circuits (the AES/SHA3 benches) legitimately exceed any fixed
deadline, so timeouts are opt-in, per endpoint or per call.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..obs import NULL_OBS


class ChannelError(Exception):
    """Base class for channel failures."""


class ChannelClosed(ChannelError):
    """Raised when receiving from a channel whose peer has aborted."""


class ChannelTimeout(ChannelClosed):
    """Raised when an opt-in receive timeout expires."""


class ProtocolDesync(ChannelError):
    """Raised when a message's tag does not match the expected one.

    Distinct from :class:`ChannelClosed` so callers can tell "peer
    aborted" (expected under failure injection) from "the two protocol
    state machines disagree" (a bug to fix).
    """


_SENTINEL = object()
_UNSET = object()


@dataclass
class ChannelStats:
    """Traffic in one direction plus receive-side wait time."""

    messages: int = 0
    payload_bytes: int = 0
    #: Seconds the receiver spent blocked waiting for these messages.
    wait_seconds: float = 0.0

    def record(self, nbytes: int) -> None:
        self.messages += 1
        self.payload_bytes += nbytes

    def record_wait(self, seconds: float) -> None:
        self.wait_seconds += seconds


class Endpoint:
    """One side of a duplex channel.

    Args:
        out_q / in_q: the underlying queues.
        sent: stats for the sending direction.
        timeout: default receive timeout in seconds; ``None`` (the
            default) blocks until a message or an abort arrives.
        obs: optional :class:`repro.obs.Obs`; receive waits are
            attributed to the ``channel.wait`` phase when enabled.
    """

    def __init__(
        self,
        out_q: "queue.Queue",
        in_q: "queue.Queue",
        sent: ChannelStats,
        timeout: Optional[float] = None,
        obs=NULL_OBS,
    ) -> None:
        self._out = out_q
        self._in = in_q
        self.sent = sent
        self.received = ChannelStats()
        self.timeout = timeout
        self.obs = obs

    def send(self, tag: str, payload: Any, nbytes: int) -> None:
        """Send a message; ``nbytes`` is its declared wire size.

        For raw byte payloads the declared size must equal the actual
        size, so communication reports cannot silently drift from the
        data on the wire.  Structured payloads (label ints, table
        batches) declare their encoded wire size, which the channel
        cannot independently check.
        """
        if isinstance(payload, (bytes, bytearray)) and len(payload) != nbytes:
            raise ValueError(
                f"declared size {nbytes} != actual payload size "
                f"{len(payload)} for tag {tag!r}"
            )
        self.sent.record(nbytes)
        self._out.put((tag, payload, nbytes))

    def recv(self, expected_tag: str, timeout: Any = _UNSET) -> Any:
        """Receive the next message, asserting its tag matches.

        ``timeout`` overrides the endpoint default for this call;
        ``None`` blocks forever.
        """
        if timeout is _UNSET:
            timeout = self.timeout
        t0 = time.perf_counter()
        try:
            item = self._in.get(timeout=timeout)
        except queue.Empty as exc:
            raise ChannelTimeout(
                f"timed out after {timeout}s waiting for {expected_tag!r}"
            ) from exc
        finally:
            waited = time.perf_counter() - t0
            self.received.record_wait(waited)
            if self.obs.enabled:
                self.obs.add_time("channel.wait", waited)
        if item is _SENTINEL:
            raise ChannelClosed("peer aborted")
        tag, payload, nbytes = item
        if tag != expected_tag:
            # Abort the peer: a desync means both state machines are
            # wrong, and the other side would otherwise block forever.
            self.abort()
            raise ProtocolDesync(
                f"expected {expected_tag!r}, got {tag!r}"
            )
        self.received.record(nbytes)
        return payload

    def abort(self) -> None:
        """Wake up a peer blocked on ``recv`` after a local failure."""
        self._out.put(_SENTINEL)


def channel_pair(
    timeout: Optional[float] = None, obs=NULL_OBS
) -> Tuple[Endpoint, Endpoint]:
    """Create the two connected endpoints (alice_end, bob_end).

    ``timeout`` is the default receive timeout for both endpoints
    (``None`` blocks forever; tests opt into short deadlines).
    """
    a2b: "queue.Queue" = queue.Queue()
    b2a: "queue.Queue" = queue.Queue()
    alice = Endpoint(a2b, b2a, ChannelStats(), timeout=timeout, obs=obs)
    bob = Endpoint(b2a, a2b, ChannelStats(), timeout=timeout, obs=obs)
    return alice, bob
