"""Channel abstraction: tag-disciplined duplex message transport.

The two parties of the protocol exchange tagged messages through an
:class:`Endpoint`.  Two implementations exist:

* :class:`InMemoryEndpoint` (via :func:`channel_pair`) — the two
  parties are threads in one process and messages travel through a
  pair of unbounded queues.  Payloads are passed by reference, but
  every message is still priced through the deterministic binary codec
  (:mod:`repro.net.codec`), so the reported communication — the GC
  bottleneck [7] — counts the bytes a real network would carry.
* :class:`repro.net.transport.FramedEndpoint` — the payload really is
  encoded, framed with sequence numbers and a CRC32, and shipped over
  a byte pipe (an in-memory pipe or a TCP socket).

The receive path accounts the time spent blocked on the peer
(``channel.wait``), which is where pipelining wins show up.

Failure modes are distinguished by exception type:

* :class:`ChannelClosed` — the peer aborted or the connection died.
* :class:`ChannelTimeout` — an opt-in receive deadline expired.  The
  peer may simply be slow; this is *not* a :class:`ChannelClosed`
  (callers handling "peer is gone" must not silently swallow "peer is
  late" — the resume layer treats the two very differently).
* :class:`ProtocolDesync` — a message arrived with the wrong tag: the
  two state machines disagree.  This is a protocol *bug*, not a peer
  failure; the receiver aborts the peer before raising so the other
  side does not stay blocked forever.
* :class:`FrameCorruption` — a framed transport failed an integrity
  check (CRC, length, sequence).  A subclass of
  :class:`ProtocolDesync`, but retryable: a
  :class:`~repro.net.session.ResumableSession` responds by
  reconnecting and replaying from the last checkpoint.

By default ``recv`` blocks indefinitely: in-process channels rely on
the abort mechanism (not a timer) to unblock the survivor on failure.
Large circuits (the AES/SHA3 benches) legitimately exceed any fixed
deadline, so timeouts are opt-in, per endpoint or per call.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..obs import NULL_OBS


class ChannelError(Exception):
    """Base class for channel failures."""


class ChannelClosed(ChannelError):
    """Raised when receiving from a channel whose peer has aborted."""


class ChannelTimeout(ChannelError):
    """Raised when an opt-in receive timeout expires.

    Deliberately *not* a :class:`ChannelClosed`: a timeout means the
    peer is late, not that it is known dead, and handlers for "peer
    aborted" must not silently swallow it.
    """


class ProtocolDesync(ChannelError):
    """Raised when a message's tag does not match the expected one.

    Distinct from :class:`ChannelClosed` so callers can tell "peer
    aborted" (expected under failure injection) from "the two protocol
    state machines disagree" (a bug to fix).
    """


class FrameCorruption(ProtocolDesync):
    """A framed transport failed an integrity check (CRC, length,
    sequence number, undecodable payload).

    Subclasses :class:`ProtocolDesync` — the two ends no longer agree
    on the byte stream — but is raised only for *transport-level*
    integrity failures, which the resume layer may recover from by
    reconnecting, while a genuine tag mismatch stays fatal.
    """


_SENTINEL = object()
_UNSET = object()

# Lazily bound repro.net.codec.encoded_size (breaks the import cycle:
# repro.net.frame imports this module for the exception types).
_encoded_size = None


def payload_wire_size(payload: Any) -> int:
    """Actual encoded wire size of a payload under the binary codec."""
    global _encoded_size
    if _encoded_size is None:
        from ..net.codec import encoded_size

        _encoded_size = encoded_size
    return _encoded_size(payload)


@dataclass
class ChannelStats:
    """Traffic in one direction plus receive-side wait time."""

    messages: int = 0
    #: Encoded payload bytes (the codec size of every message body).
    payload_bytes: int = 0
    #: Total on-the-wire bytes including frame headers, CRCs and
    #: heartbeats.  Equal to ``payload_bytes`` on unframed in-memory
    #: channels, strictly larger on framed transports.
    wire_bytes: int = 0
    #: Seconds the receiver spent blocked waiting for these messages.
    wait_seconds: float = 0.0

    def record(self, nbytes: int, wire_bytes: Optional[int] = None) -> None:
        self.messages += 1
        self.payload_bytes += nbytes
        self.wire_bytes += nbytes if wire_bytes is None else wire_bytes

    def record_overhead(self, nbytes: int) -> None:
        """Count non-message wire bytes (heartbeats, aborts)."""
        self.wire_bytes += nbytes

    def record_wait(self, seconds: float) -> None:
        self.wait_seconds += seconds

    def merge(self, other: "ChannelStats") -> None:
        """Fold another stats object into this one (session totals
        across reconnected transports)."""
        self.messages += other.messages
        self.payload_bytes += other.payload_bytes
        self.wire_bytes += other.wire_bytes
        self.wait_seconds += other.wait_seconds


class Endpoint:
    """One side of a duplex tagged-message channel (abstract).

    Subclasses implement :meth:`send`, :meth:`_next_message` and
    :meth:`abort`; this base class owns the shared contract — stats,
    default timeouts, receive-wait accounting and the tag discipline
    (a mismatched tag aborts the peer and raises
    :class:`ProtocolDesync`).

    Args:
        timeout: default receive timeout in seconds; ``None`` (the
            default) blocks until a message or an abort arrives.
        obs: optional :class:`repro.obs.Obs`; receive waits are
            attributed to the ``channel.wait`` phase when enabled.
        sent / received: stats objects to record into (fresh ones by
            default; sessions inject persistent ones so totals survive
            reconnects).
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        obs=NULL_OBS,
        sent: Optional[ChannelStats] = None,
        received: Optional[ChannelStats] = None,
    ) -> None:
        self.sent = sent if sent is not None else ChannelStats()
        self.received = received if received is not None else ChannelStats()
        self.timeout = timeout
        self.obs = obs

    # -- subclass responsibilities -------------------------------------------

    def send(self, tag: str, payload: Any) -> None:
        """Send one tagged message; its wire size is the codec size."""
        raise NotImplementedError

    def _next_message(self, timeout: Optional[float]) -> Tuple[str, Any, int]:
        """Block for the next message; return ``(tag, payload, nbytes)``.

        Raises :class:`ChannelTimeout` when the deadline expires,
        :class:`ChannelClosed` on peer abort / connection loss, and
        :class:`FrameCorruption` on integrity failures.
        """
        raise NotImplementedError

    def abort(self) -> None:
        """Wake up a peer blocked on ``recv`` after a local failure."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources; idempotent."""

    # -- the shared receive contract -----------------------------------------

    def recv(self, expected_tag: str, timeout: Any = _UNSET) -> Any:
        """Receive the next message, asserting its tag matches.

        ``timeout`` overrides the endpoint default for this call;
        ``None`` blocks forever.
        """
        if timeout is _UNSET:
            timeout = self.timeout
        t0 = time.perf_counter()
        try:
            tag, payload, nbytes = self._next_message(timeout)
        finally:
            waited = time.perf_counter() - t0
            self.received.record_wait(waited)
            if self.obs.enabled:
                self.obs.add_time("channel.wait", waited)
        if tag != expected_tag:
            # Abort the peer: a desync means both state machines are
            # wrong, and the other side would otherwise block forever.
            self.abort()
            raise ProtocolDesync(f"expected {expected_tag!r}, got {tag!r}")
        self.received.record(nbytes)
        return payload


class InMemoryEndpoint(Endpoint):
    """In-process endpoint: a pair of unbounded queues.

    Payloads travel by reference (no serialization on the hot path),
    but each message is priced at its actual encoded size so the
    communication totals match what a framed transport would ship.
    """

    def __init__(
        self,
        out_q: "queue.Queue",
        in_q: "queue.Queue",
        timeout: Optional[float] = None,
        obs=NULL_OBS,
        sent: Optional[ChannelStats] = None,
        received: Optional[ChannelStats] = None,
    ) -> None:
        super().__init__(timeout=timeout, obs=obs, sent=sent, received=received)
        self._out = out_q
        self._in = in_q

    def send(self, tag: str, payload: Any) -> None:
        nbytes = payload_wire_size(payload)
        self.sent.record(nbytes)
        self._out.put((tag, payload, nbytes))

    def _next_message(self, timeout: Optional[float]) -> Tuple[str, Any, int]:
        try:
            item = self._in.get(timeout=timeout)
        except queue.Empty as exc:
            raise ChannelTimeout(
                f"timed out after {timeout}s waiting for a message"
            ) from exc
        if item is _SENTINEL:
            raise ChannelClosed("peer aborted")
        return item

    def abort(self) -> None:
        self._out.put(_SENTINEL)


def channel_pair(
    timeout: Optional[float] = None, obs=NULL_OBS
) -> Tuple[InMemoryEndpoint, InMemoryEndpoint]:
    """Create the two connected endpoints (alice_end, bob_end).

    ``timeout`` is the default receive timeout for both endpoints
    (``None`` blocks forever; tests opt into short deadlines).
    """
    a2b: "queue.Queue" = queue.Queue()
    b2a: "queue.Queue" = queue.Queue()
    alice = InMemoryEndpoint(a2b, b2a, timeout=timeout, obs=obs)
    bob = InMemoryEndpoint(b2a, a2b, timeout=timeout, obs=obs)
    return alice, bob
