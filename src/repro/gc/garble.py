"""Half-gate garbling [49] with free-XOR [15] and row reduction [27].

Every non-XOR 2-input gate is garbled as an AND gate with optional
input/output inversions (:func:`repro.circuit.gates.and_decomposition`)
at a cost of exactly **two ciphertexts** (the generator half ``TG`` and
the evaluator half ``TE``); XOR gates are free.  This is the state of
the art the paper's cost metric assumes (Section 2.3): one garbled
non-XOR gate == one 2x16-byte garbled table on the wire.

Conventions
-----------
* A wire's two labels are ``W0`` and ``W1 = W0 ^ R`` where ``R`` is the
  garbler's global free-XOR offset with ``lsb(R) = 1``.
* ``lsb(W)`` is the permute/point bit.
* The per-gate tweaks are ``2*gid`` and ``2*gid + 1`` where ``gid`` is
  a globally unique gate index agreed by both parties.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Tuple

from ..circuit.gates import and_decomposition
from .hashing import LABEL_MASK, hash_labels2, hash_labels4


def random_label(rng=None) -> int:
    """Fresh 128-bit label."""
    if rng is None:
        return secrets.randbits(128)
    return rng.getrandbits(128)


def random_delta(rng=None) -> int:
    """Fresh free-XOR offset R with the permute bit forced to 1.

    One delta garbles one evaluation: an evaluator that ever sees both
    labels of a wire learns R and with it every secret under that
    delta.  Layers that garble ahead of time (:mod:`repro.gc.material`)
    must therefore treat each delta *epoch* as single-use — never
    serve material from one epoch to two evaluator identities.
    """
    return random_label(rng) | 1


@dataclass(frozen=True)
class GarbledTable:
    """The two half-gate ciphertexts of one garbled non-XOR gate."""

    tg: int
    te: int

    SIZE_BYTES = 32  #: wire size of one garbled table (2 x 16 bytes)


def garble_and(a0: int, b0: int, delta: int, gid: int) -> Tuple[int, GarbledTable]:
    """Garble ``out = AND(a, b)``; returns ``(out0, table)``.

    ``a0``/``b0`` are the zero labels of the inputs and ``delta`` the
    global offset.  Implements the generator side of the half-gates
    scheme: the first half handles ``a & p_b`` and the second half
    ``a & (b ^ p_b)`` where ``p_b`` is b's permute bit.
    """
    j0 = 2 * gid
    j1 = 2 * gid + 1
    pa = a0 & 1
    pb = b0 & 1
    # The four distinct hash points of one half-gate pair, as one
    # unrolled batch (the straight-line form re-hashed H(a0,j0) and
    # H(b0,j1); the generic iterator batch paid per-pair overhead).
    ha0, ha1, hb0, hb1 = hash_labels4(
        a0, j0, a0 ^ delta, j0, b0, j1, b0 ^ delta, j1
    )
    # Generator half.
    tg = ha0 ^ ha1
    if pb:
        tg ^= delta
    wg0 = ha0
    if pa:
        wg0 ^= tg
    # Evaluator half.
    te = hb0 ^ hb1 ^ a0
    we0 = hb0
    if pb:
        we0 ^= te ^ a0
    out0 = (wg0 ^ we0) & LABEL_MASK
    return out0, GarbledTable(tg & LABEL_MASK, te & LABEL_MASK)


def evaluate_and(a: int, b: int, table: GarbledTable, gid: int) -> int:
    """Evaluate a garbled AND gate on held labels ``a`` and ``b``."""
    j0 = 2 * gid
    ha, hb = hash_labels2(a, j0, b, j0 + 1)
    w = ha ^ hb
    if a & 1:
        w ^= table.tg
    if b & 1:
        w ^= table.te ^ a
    return w & LABEL_MASK


def garble_gate(
    tt: int, a0: int, b0: int, delta: int, gid: int
) -> Tuple[int, GarbledTable]:
    """Garble an arbitrary AND-like gate type.

    Input inversions are absorbed by re-basing the zero labels
    (``a0 ^ ai*delta`` is the label of the value that makes the AND
    input 1 false); the output inversion re-bases the output zero
    label.  The evaluator needs no adjustment — its labels are raw.
    """
    dec = and_decomposition(tt)
    if dec is None:
        raise ValueError(f"gate type {tt:#06b} is not AND-like")
    ai, bi, oi = dec
    eff_a0 = a0 ^ (delta if ai else 0)
    eff_b0 = b0 ^ (delta if bi else 0)
    out0, table = garble_and(eff_a0, eff_b0, delta, gid)
    if oi:
        out0 ^= delta
    return out0 & LABEL_MASK, table


def evaluate_gate(tt: int, a: int, b: int, table: GarbledTable, gid: int) -> int:
    """Evaluate an arbitrary AND-like garbled gate (labels are raw)."""
    if and_decomposition(tt) is None:
        raise ValueError(f"gate type {tt:#06b} is not AND-like")
    return evaluate_and(a, b, table, gid)
