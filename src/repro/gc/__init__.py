"""Garbled-circuit cryptographic substrate.

Half-gate garbling with free-XOR and row reduction, the SHA-256-based
garbling hash, 1-out-of-2 oblivious transfer, and the byte-counted
in-memory channel the two-party protocol runs over.
"""

from .channel import (
    ChannelClosed,
    ChannelError,
    ChannelStats,
    ChannelTimeout,
    Endpoint,
    FrameCorruption,
    InMemoryEndpoint,
    ProtocolDesync,
    channel_pair,
    payload_wire_size,
)
from .garble import GarbledTable, evaluate_gate, garble_gate, random_delta, random_label
from .hashing import LABEL_BITS, LABEL_BYTES, hash_label
from .ot import OTReceiver, OTSender
from .ot_extension import OTExtensionReceiver, OTExtensionSender

__all__ = [
    "ChannelClosed",
    "ChannelError",
    "ChannelStats",
    "ChannelTimeout",
    "Endpoint",
    "FrameCorruption",
    "GarbledTable",
    "InMemoryEndpoint",
    "LABEL_BITS",
    "LABEL_BYTES",
    "OTExtensionReceiver",
    "OTExtensionSender",
    "OTReceiver",
    "OTSender",
    "ProtocolDesync",
    "channel_pair",
    "payload_wire_size",
    "evaluate_gate",
    "garble_gate",
    "hash_label",
    "random_delta",
    "random_label",
]
