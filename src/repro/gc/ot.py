"""1-out-of-2 Oblivious Transfer (Section 2.2).

Implements the "simplest OT" of Chou-Orlandi style Diffie-Hellman OT
over a multiplicative prime group: Alice (sender) holds two 16-byte
messages, Bob (receiver) holds a choice bit and learns exactly the
chosen message; Alice learns nothing about the choice.

Two parameter sets are provided:

* ``modp2048`` — the RFC 3526 group 14 prime, a realistic setting;
* ``modp512``  — a small prime for fast unit tests (not secure).

The transfer of Bob's GC input labels (Algorithms 1-2 lines 3-4) runs
one OT per input bit.  Group elements cross the channel as
**fixed-width** little-endian byte strings (the group size in bytes),
so communication totals are deterministic and independent of the
random element values.

Both sides expose ``snapshot`` / ``restore`` / ``rebind``: the resume
layer (:mod:`repro.net.session`) checkpoints OT progress at cycle
boundaries and, after a reconnect, rolls the transfer counters back so
a replay re-runs exactly the transfers the peer also rolled back.
"""

from __future__ import annotations

import secrets
import threading
from typing import Any, Dict, Optional, Tuple

from .channel import Endpoint
from .hashing import LABEL_BYTES, kdf_bytes

# RFC 3526, group 14 (2048-bit MODP); generator 2.
_MODP2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

# A fixed 512-bit odd modulus for fast unit tests.  The DH-OT algebra
# is functionally correct over any group where the elements involved
# are invertible; this parameter set is for speed only and offers no
# security guarantees (use "modp2048" for those).
_MODP512 = int(
    "F518AA8781A8DF278ABA4E7D64B7CB9D49462353E5C3A8A5C8E6F0C8E6C1E1C9"
    "5C4E9F7C9F8F1E2D3C4B5A69788796A5B4C3D2E1F0F1E2D3C4B5A69788796A3",
    16,
)

GROUPS = {
    "modp2048": (_MODP2048, 2),
    "modp512": (_MODP512, 2),
}


def _encrypt(key: bytes, message: int, index: int) -> bytes:
    pad = kdf_bytes(key, b"ot-msg%d" % index, LABEL_BYTES)
    m = message.to_bytes(LABEL_BYTES, "little")
    return bytes(x ^ y for x, y in zip(m, pad))


def _decrypt(key: bytes, blob: bytes, index: int) -> int:
    pad = kdf_bytes(key, b"ot-msg%d" % index, LABEL_BYTES)
    return int.from_bytes(bytes(x ^ y for x, y in zip(blob, pad)), "little")


class BaseOTCache:
    """Thread-safe per-identity store of OT-extension base material.

    The :math:`\\kappa` public-key base OTs are the dominant fixed cost
    of an OT-extension session.  Semi-honestly, the base *seeds* may be
    reused across sessions between the same two parties (they never
    cross the wire again); only the PRG expansion must be
    session-unique (see :func:`repro.gc.ot_extension.session_salt`).
    The serve layer keeps one cache per side, keyed by client identity:
    the server stores the sender-side ``(s, seeds)``, the client stores
    its receiver-side seed pairs.  Entries are opaque to the cache.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Any, Any] = {}

    def get(self, identity: Any) -> Optional[Any]:
        if identity is None:
            return None
        with self._lock:
            return self._entries.get(identity)

    def put(self, identity: Any, base: Any) -> None:
        if identity is None or base is None:
            return
        with self._lock:
            self._entries[identity] = base

    def discard(self, identity: Any) -> None:
        with self._lock:
            self._entries.pop(identity, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, identity: Any) -> bool:
        return self.get(identity) is not None


class OTSender:
    """Alice's side: transfers one of (m0, m1) per invocation."""

    def __init__(self, chan: Endpoint, group: str = "modp2048") -> None:
        self.p, self.g = GROUPS[group]
        self.group_bytes = (self.p.bit_length() + 7) // 8
        self.chan = chan
        self._a = secrets.randbelow(self.p - 2) + 1
        self._big_a = pow(self.g, self._a, self.p)
        self._big_a_inv = pow(self._big_a, -1, self.p)
        self._setup_sent = False
        self.count = 0

    def _ensure_setup(self) -> None:
        if not self._setup_sent:
            self.chan.send(
                "ot-setup", self._big_a.to_bytes(self.group_bytes, "little")
            )
            self._setup_sent = True

    def send(self, m0: int, m1: int) -> None:
        """Obliviously transfer one of two 128-bit messages."""
        self._ensure_setup()
        big_b = int.from_bytes(self.chan.recv("ot-b"), "little")
        if not 1 < big_b < self.p:
            raise ValueError("OT receiver sent an invalid group element")
        group_bytes = self.group_bytes
        k0 = pow(big_b, self._a, self.p).to_bytes(group_bytes, "little")
        k1 = pow(big_b * self._big_a_inv % self.p, self._a, self.p).to_bytes(
            group_bytes, "little"
        )
        e0 = _encrypt(k0, m0, self.count)
        e1 = _encrypt(k1, m1, self.count)
        self.chan.send("ot-e", (e0, e1))
        self.count += 1

    # -- resume hooks --------------------------------------------------------

    def snapshot(self) -> dict:
        """Progress marker for cycle-level checkpoints.  The private
        key rides along so a checkpoint restored by a *different*
        sender instance (serve-fleet session handoff: the adopting
        shard builds a fresh party) stays consistent with the ``A``
        the receiver cached at setup."""
        return {"setup_sent": self._setup_sent, "count": self.count,
                "a": self._a}

    def restore(self, snap: dict) -> None:
        self._setup_sent = snap["setup_sent"]
        self.count = snap["count"]
        a = snap.get("a")
        if a is not None and a != self._a:
            self._a = a
            self._big_a = pow(self.g, a, self.p)
            self._big_a_inv = pow(self._big_a, -1, self.p)

    def rebind(self, chan: Endpoint) -> None:
        """Point at a fresh transport after a reconnect."""
        self.chan = chan


class OTReceiver:
    """Bob's side: learns ``m[choice]`` and nothing else."""

    def __init__(self, chan: Endpoint, group: str = "modp2048") -> None:
        self.p, self.g = GROUPS[group]
        self.group_bytes = (self.p.bit_length() + 7) // 8
        self.chan = chan
        self._big_a = None
        self.count = 0

    def _ensure_setup(self) -> None:
        if self._big_a is None:
            self._big_a = int.from_bytes(self.chan.recv("ot-setup"), "little")
            if not 1 < self._big_a < self.p:
                raise ValueError("OT sender sent an invalid group element")

    def receive(self, choice: int) -> int:
        """Receive the message selected by ``choice`` (0 or 1)."""
        self._ensure_setup()
        b = secrets.randbelow(self.p - 2) + 1
        big_b = pow(self.g, b, self.p)
        if choice:
            big_b = big_b * self._big_a % self.p
        group_bytes = self.group_bytes
        self.chan.send("ot-b", big_b.to_bytes(group_bytes, "little"))
        key = pow(self._big_a, b, self.p).to_bytes(group_bytes, "little")
        e0, e1 = self.chan.recv("ot-e")
        return _decrypt(key, e1 if choice else e0, self.count_and_bump())

    def count_and_bump(self) -> int:
        c = self.count
        self.count += 1
        return c

    # -- resume hooks --------------------------------------------------------

    def snapshot(self) -> dict:
        return {"big_a": self._big_a, "count": self.count}

    def restore(self, snap: dict) -> None:
        self._big_a = snap["big_a"]
        self.count = snap["count"]

    def rebind(self, chan: Endpoint) -> None:
        self.chan = chan
