"""Command-line interface: compile, run and inspect garbled programs.

Usage::

    python -m repro run program.c --alice 5,7 --bob 9,1
    python -m repro asm program.c              # show compiled assembly
    python -m repro bench sum32 mult32         # registry benchmarks
    python -m repro bench --all
    python -m repro anatomy program.c --alice 5 --bob 9   # cost breakdown
    python -m repro party garbler --circuit sum32 --value 1234 \
        --listen 127.0.0.1:9100            # two-process TCP deployment
    python -m repro router --listen 127.0.0.1:9300 \
        --shard 127.0.0.1:9201 --shard 127.0.0.1:9202   # fleet front

``run`` compiles the C file (or assembles a ``.s`` file), executes it
on the garbled processor with the given private inputs, and prints the
output memory plus the garbling cost — the paper's Figure 4 flow as a
shell command.
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def _parse_words(text: str) -> List[int]:
    if not text:
        return []
    return [int(x, 0) & 0xFFFFFFFF for x in text.split(",")]


def _make_obs(args):
    """Build an Obs from --profile/--trace flags (None when neither)."""
    if not (getattr(args, "profile", False) or getattr(args, "trace", None)):
        return None
    from .obs import JsonlSink, Obs

    sink = JsonlSink(args.trace) if args.trace else None
    return Obs(sink=sink)


def _finish_obs(obs, args) -> None:
    """Close the sink and print the profile report."""
    if obs is None:
        return
    obs.close()
    if args.trace:
        print(f"trace written      : {args.trace}")
    if args.profile:
        from .obs import render_profile

        print()
        print(render_profile(obs))


def _load_program(path: str):
    from .arm.assembler import assemble
    from .cc import compile_c

    with open(path) as fh:
        source = fh.read()
    if path.endswith(".s") or path.endswith(".asm"):
        return source, assemble(source), None
    compiled = compile_c(source)
    return source, compiled.words, compiled.asm


def cmd_run(args) -> int:
    from .arm import GarbledMachine

    _, words, _ = _load_program(args.program)
    alice = _parse_words(args.alice)
    bob = _parse_words(args.bob)
    machine = GarbledMachine(
        words,
        alice_words=max(len(alice), 1),
        bob_words=max(len(bob), 1),
        output_words=args.output_words,
        data_words=args.data_words,
        imem_words=max(32, 1 << (len(words) - 1).bit_length()),
    )
    obs = _make_obs(args)
    result = machine.run(alice=alice, bob=bob, cycles=args.cycles, obs=obs,
                         engine=args.engine)
    print(f"output memory      : {result.output_words}")
    print(f"cycles garbled     : {result.cycles:,}")
    print(f"garbled non-XOR    : {result.garbled_nonxor:,}")
    print(f"  = {result.garbled_nonxor * 32:,} bytes of garbled tables")
    print(f"w/o SkipGate       : {result.conventional_nonxor:,} non-XOR")
    if result.garbled_nonxor:
        print(f"SkipGate advantage : "
              f"{result.conventional_nonxor / result.garbled_nonxor:,.0f}x")
    print(f"input-independent flow: {result.input_independent_flow}")
    _finish_obs(obs, args)
    return 0


def cmd_asm(args) -> int:
    from .arm.assembler import disassemble_word

    _, words, asm = _load_program(args.program)
    if asm:
        print(asm)
    print(f"; {len(words)} instruction words")
    if args.disassemble:
        for i, w in enumerate(words):
            print(f"{i:4d}: {w:08x}  {disassemble_word(w)}")
    return 0


def cmd_bench(args) -> int:
    from .programs import REGISTRY
    from .reporting.runner import run_processor_benchmark

    names = list(REGISTRY) if args.all else args.names
    if not names:
        print("available benchmarks:", ", ".join(REGISTRY))
        return 0
    obs = _make_obs(args)
    for name in names:
        entry = run_processor_benchmark(name, force=args.force, obs=obs)
        print(
            f"{name:16s} garbled={entry['garbled_nonxor']:>10,} "
            f"cycles={entry['cycles']:>7,} "
            f"seconds={entry['seconds']:>7.2f} "
            f"({entry['paper_key'] or '-'})"
        )
    _finish_obs(obs, args)
    return 0


def cmd_anatomy(args) -> int:
    """Per-cycle cost trace of a program (where the gates go)."""
    from .arm import GarbledMachine
    from .arm.assembler import disassemble_word
    from .circuit.bits import pack_words
    from .core import CountingBackend, make_engine

    _, words, _ = _load_program(args.program)
    alice = _parse_words(args.alice)
    bob = _parse_words(args.bob)
    machine = GarbledMachine(
        words,
        alice_words=max(len(alice), 1),
        bob_words=max(len(bob), 1),
        output_words=args.output_words,
        data_words=args.data_words,
        imem_words=max(32, 1 << (len(words) - 1).bit_length()),
    )
    cycles, _flow = machine.required_cycles(alice, bob)
    imem = machine.program + [0] * (
        machine.config.imem_words - len(machine.program)
    )
    engine = make_engine(
        machine.net, CountingBackend(), public_init=pack_words(imem, 32)
    )
    from .arm.emulator import Emulator

    emu = Emulator(machine.program, machine.config, alice, bob)
    print(f"{'cyc':>4} {'pc':>4}  {'instruction':32s} {'sent':>6} {'local':>6}")
    for i in range(cycles):
        word = emu.imem[emu.pc]
        trace = emu.step()
        cs = engine.step(final=(i == cycles - 1))
        text = disassemble_word(word) if not emu.halted or trace.executed else "(parked)"
        marker = "" if trace.executed else "   ; skipped"
        if cs.tables_sent or args.verbose:
            print(f"{i:>4} {trace.pc:>4}  {text:32s} {cs.tables_sent:>6} "
                  f"{cs.cat_iv_garbled:>6}{marker}")
    print(f"total garbled non-XOR: {engine.stats.garbled_nonxor:,}")
    return 0


def cmd_report(args) -> int:
    """Print the rendered benchmark tables (results/*.md)."""
    import glob
    import os

    from .reporting.tables import RESULTS_DIR

    paths = sorted(glob.glob(os.path.join(RESULTS_DIR, "*.md")))
    if not paths:
        print(
            "no rendered tables yet - run: pytest benchmarks/ --benchmark-only"
        )
        return 1
    for path in paths:
        with open(path) as fh:
            print(fh.read())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ARM2GC garbled processor toolchain"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="garble and evaluate a program")
    p_run.add_argument("program", help="C source (.c) or assembly (.s)")
    p_run.add_argument("--alice", default="", help="Alice's words, comma separated")
    p_run.add_argument("--bob", default="", help="Bob's words, comma separated")
    p_run.add_argument("--output-words", type=int, default=8)
    p_run.add_argument("--data-words", type=int, default=128)
    p_run.add_argument("--cycles", type=int, default=None,
                       help="explicit cycle count (secret-PC programs)")
    p_run.add_argument("--engine", choices=("compiled", "reference"),
                       default="compiled",
                       help="SkipGate execution strategy (bit-identical; "
                            "'reference' is the interpreted engine)")
    p_run.add_argument("--profile", action="store_true",
                       help="print a per-phase wall-clock breakdown")
    p_run.add_argument("--trace", metavar="PATH", default=None,
                       help="write per-cycle JSON-lines trace events")
    p_run.set_defaults(func=cmd_run)

    p_asm = sub.add_parser("asm", help="show compiled assembly")
    p_asm.add_argument("program")
    p_asm.add_argument("--disassemble", action="store_true")
    p_asm.set_defaults(func=cmd_asm)

    p_bench = sub.add_parser("bench", help="run registry benchmarks")
    p_bench.add_argument("names", nargs="*")
    p_bench.add_argument("--all", action="store_true")
    p_bench.add_argument("--force", action="store_true",
                         help="ignore the result cache")
    p_bench.add_argument("--profile", action="store_true",
                         help="re-measure with instrumentation and print "
                              "a per-phase wall-clock breakdown")
    p_bench.add_argument("--trace", metavar="PATH", default=None,
                         help="write per-cycle JSON-lines trace events")
    p_bench.set_defaults(func=cmd_bench)

    p_an = sub.add_parser("anatomy", help="per-cycle garbling cost trace")
    p_an.add_argument("program")
    p_an.add_argument("--alice", default="")
    p_an.add_argument("--bob", default="")
    p_an.add_argument("--output-words", type=int, default=8)
    p_an.add_argument("--data-words", type=int, default=128)
    p_an.add_argument("--verbose", action="store_true",
                      help="print zero-cost cycles too")
    p_an.set_defaults(func=cmd_anatomy)

    p_rep = sub.add_parser("report", help="print the rendered paper tables")
    p_rep.set_defaults(func=cmd_report)

    from .net.cli import add_party_parser
    from .serve.cli import (
        add_chaos_parser,
        add_loadgen_parser,
        add_router_parser,
        add_serve_parser,
    )

    add_party_parser(sub)
    add_serve_parser(sub)
    add_router_parser(sub)
    add_loadgen_parser(sub)
    add_chaos_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
