"""SHA3-256 (Keccak-f[1600]) as a sequential garbled circuit.

One Keccak round per clock cycle, 24 cycles.  The state lives in 1600
flip-flops initialized from the (XOR-shared) rate block plus public
zero capacity bits.  Per round:

* theta, rho, pi — pure XOR / rewiring: free under free-XOR,
* chi — 5 ANDs per row slice: 1600 garbled ANDs per round,
* iota — XOR with a round constant selected by the (public) round
  counter: SkipGate computes the selection locally, so the controller
  contributes nothing (the mechanism behind Table 1's SHA3 row, where
  the conventional cost 40,032 drops to 38,400 with SkipGate).

The capacity bits start as public zeros, so part of the first round's
chi collapses via Category ii — this is why the ARM2GC column of
Table 2 reports 37,760 < 38,400 for SHA3.

A reference Python Keccak implementation in this module validates the
circuit (and is itself validated against known SHA3-256 digests).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import InitSpec, Netlist

ROUNDS = 24
LANE = 64
RATE_BITS = 1088  # SHA3-256
STATE_BITS = 1600

#: Keccak round constants.
RC = [
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
]

#: Rotation offsets r[x][y].
ROT = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
]


def keccak_f(lanes: List[List[int]]) -> List[List[int]]:
    """Reference Keccak-f[1600] permutation on 5x5 uint64 lanes."""
    mask = (1 << 64) - 1

    def rol(v, n):
        n %= 64
        return ((v << n) | (v >> (64 - n))) & mask

    a = [row[:] for row in lanes]
    for rnd in range(ROUNDS):
        # theta
        c = [a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4] for x in range(5)]
        d = [c[(x - 1) % 5] ^ rol(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                a[x][y] ^= d[x]
        # rho + pi
        b = [[0] * 5 for _ in range(5)]
        for x in range(5):
            for y in range(5):
                b[y][(2 * x + 3 * y) % 5] = rol(a[x][y], ROT[x][y])
        # chi
        for x in range(5):
            for y in range(5):
                a[x][y] = b[x][y] ^ ((~b[(x + 1) % 5][y]) & b[(x + 2) % 5][y])
        # iota
        a[0][0] ^= RC[rnd]
    return a


def sha3_256_reference(message_bits: Sequence[int]) -> List[int]:
    """Reference SHA3-256 of a message that fits one rate block.

    ``message_bits`` must be at most ``RATE_BITS - 4`` bits; SHA3
    padding (01 || 10*1) is applied.  Returns 256 output bits.
    """
    if len(message_bits) > RATE_BITS - 4:
        raise ValueError("single-block implementation")
    block = list(message_bits) + [0, 1, 1]  # SHA3 suffix 01 + pad10*1 start
    block += [0] * (RATE_BITS - 1 - len(block)) + [1]
    state_bits = block + [0] * (STATE_BITS - RATE_BITS)
    lanes = [[0] * 5 for _ in range(5)]
    for i, bit in enumerate(state_bits):
        x, y, z = (i // 64) % 5, i // 320, i % 64
        lanes[x][y] |= bit << z
    lanes = keccak_f(lanes)
    out = []
    for i in range(256):
        x, y, z = (i // 64) % 5, i // 320, i % 64
        out.append((lanes[x][y] >> z) & 1)
    return out


def sha3_256_sequential(message_bits: int = 512) -> Tuple[Netlist, int]:
    """Build the sequential SHA3-256 circuit.

    The message is ``message_bits`` long and XOR-shared: Alice holds
    share ``a``, Bob share ``b``, the hashed message is ``a ^ b``
    (consistent with the XOR-shared-input convention of Section 5.7).
    Padding bits and the 512 capacity bits initialize to public
    constants.  Returns ``(netlist, 24)``; the outputs are the 256
    digest bits.
    """
    if message_bits > RATE_BITS - 4:
        raise ValueError("single-block implementation")
    b = CircuitBuilder(f"sha3_256_m{message_bits}")

    # State flip-flops: message bits are XOR-shared initializers (free
    # under free-XOR); padding and capacity bits are public constants.
    pad = [0, 1, 1]
    pad += [0] * (RATE_BITS - 1 - message_bits - len(pad)) + [1]
    regs: List[int] = []
    for i in range(STATE_BITS):
        if i < message_bits:
            regs.append(b.dff(init=InitSpec("shared", i)))
        elif i < RATE_BITS:
            regs.append(b.dff(init=InitSpec("const", pad[i - message_bits])))
        else:
            regs.append(b.dff())
    cur = regs

    # Round counter (public; 5 bits) driving the iota constant ROM.
    from ..circuit import modules as M

    counter = b.dff_bus(5, 0)
    b.drive_dff_bus(counter, M.increment(b, counter))

    def lane_bit(bits: List[int], x: int, y: int, z: int) -> int:
        return bits[(5 * y + x) * 64 + z]

    def set_lane_bit(bits: List[int], x: int, y: int, z: int, w: int) -> None:
        bits[(5 * y + x) * 64 + z] = w

    # theta
    cbus = [[None] * 64 for _ in range(5)]
    for x in range(5):
        for z in range(64):
            w = lane_bit(cur, x, 0, z)
            for y in range(1, 5):
                w = b.xor_(w, lane_bit(cur, x, y, z))
            cbus[x][z] = w
    after_theta = [0] * STATE_BITS
    for x in range(5):
        for y in range(5):
            for z in range(64):
                d = b.xor_(cbus[(x - 1) % 5][z], cbus[(x + 1) % 5][(z - 1) % 64])
                set_lane_bit(
                    after_theta, x, y, z, b.xor_(lane_bit(cur, x, y, z), d)
                )

    # rho + pi (pure rewiring)
    after_pi = [0] * STATE_BITS
    for x in range(5):
        for y in range(5):
            for z in range(64):
                set_lane_bit(
                    after_pi,
                    y,
                    (2 * x + 3 * y) % 5,
                    (z + ROT[x][y]) % 64,
                    lane_bit(after_theta, x, y, z),
                )

    # chi: 1600 ANDs per round
    after_chi = [0] * STATE_BITS
    for x in range(5):
        for y in range(5):
            for z in range(64):
                t = b.andn(
                    lane_bit(after_pi, (x + 2) % 5, y, z),
                    lane_bit(after_pi, (x + 1) % 5, y, z),
                )
                set_lane_bit(
                    after_chi, x, y, z, b.xor_(lane_bit(after_pi, x, y, z), t)
                )

    # iota: XOR lane (0,0) with RC[round] selected by the public
    # counter through a constant ROM (free for public addresses).
    # Keccak round constants only have bits at positions 2^j - 1, so a
    # 7-bit-wide ROM suffices (this keeps the conventional-GC size of
    # the controller honest).
    from ..circuit.macros import Rom, const_words

    rc_positions = [0, 1, 3, 7, 15, 31, 63]
    packed = [
        sum(((rc >> p) & 1) << j for j, p in enumerate(rc_positions))
        for rc in RC
    ]
    rc_rom = b.net.add_macro(Rom("rc", 7, const_words(packed, 7)))
    rc_bits = rc_rom.read(b, counter)
    for j, z in enumerate(rc_positions):
        set_lane_bit(
            after_chi, 0, 0, z, b.xor_(lane_bit(after_chi, 0, 0, z), rc_bits[j])
        )

    b.drive_dff_bus(regs, after_chi)
    b.set_outputs(regs[:256])
    return b.build(), ROUNDS
