"""Sequential TinyGarble-style circuits: Sum, Compare, Hamming, Mult.

These are the "HDL synthesis" versions of the paper's benchmark
functions (Tables 1 and 2, first columns): compact *sequential*
circuits in the TinyGarble style [41], where a small per-cycle core is
clocked many times and flip-flops are initialized with known (public)
values.  SkipGate then exploits the public initial values — e.g. a
bit-serial adder's carry flip-flop starts at public 0, so the first
cycle's carry AND is skipped (Table 1 shows exactly that: Sum 32 costs
31, not 32).

Conventions: each builder returns ``(netlist, cycles)``; inputs stream
in one slice per cycle (Alice's operand via the ``alice`` role, Bob's
via ``bob``), least-significant bit first, and outputs are collected
from flip-flops/shift registers after the last cycle.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Netlist
from ..circuit import modules as M


def sum_sequential(width: int) -> Tuple[Netlist, int]:
    """Bit-serial adder: 1 full adder, ``width`` cycles.

    Per cycle: one AND for the carry.  Cycle 1's AND is skipped because
    the carry flip-flop starts at public 0 (Table 1: Sum 32 garbles 31).
    The sum bits shift into an output register.
    """
    b = CircuitBuilder(f"sum{width}_seq")
    x = b.alice_input(1)
    y = b.bob_input(1)
    carry = b.dff()
    s, cout = M.full_adder(b, x[0], y[0], carry)
    b.drive_dff(carry, cout)
    # Output shift register collecting the stream of sum bits.
    out = [b.dff() for _ in range(width)]
    for i in range(width - 1):
        b.drive_dff(out[i], out[i + 1])
    b.drive_dff(out[-1], s)
    b.set_outputs(out)
    return b.build(), width


def sum_combinational(width: int) -> Tuple[Netlist, int]:
    """Single-cycle ripple adder (``width - 1`` garbled ANDs)."""
    b = CircuitBuilder(f"sum{width}")
    x = b.alice_input(width)
    y = b.bob_input(width)
    b.set_outputs(M.ripple_add(b, x, y))
    return b.build(), 1


def compare_sequential(width: int) -> Tuple[Netlist, int]:
    """Bit-serial unsigned comparator ``x < y``: 1 AND per cycle.

    The borrow cell is the subtract-carry cell with the x input
    inverted; because the carry flip-flop initializes to public **1**
    (the +1 of two's complement), cycle 1 still garbles its AND —
    matching Table 1's Compare rows, which show zero skipped gates.
    """
    from ..circuit.netlist import InitSpec

    b = CircuitBuilder(f"compare{width}_seq")
    x = b.alice_input(1)
    y = b.bob_input(1)
    carry = b.dff(init=InitSpec("const", 1))
    ny = b.not_(y[0])
    # carry of x + ~y + 1 (1 = no borrow = x >= y so far).
    _, cout = M.full_adder(b, x[0], ny, carry)
    b.drive_dff(carry, cout)
    # x < y after the final cycle.
    b.set_outputs([b.not_(cout)])
    return b.build(), width


def compare_combinational(width: int) -> Tuple[Netlist, int]:
    """Single-cycle comparator (``width`` garbled ANDs)."""
    b = CircuitBuilder(f"compare{width}")
    x = b.alice_input(width)
    y = b.bob_input(width)
    b.set_outputs([M.less_than(b, x, y)])
    return b.build(), 1


def hamming_sequential(width: int) -> Tuple[Netlist, int]:
    """Bit-serial Hamming distance: XOR + counter increment per cycle.

    The counter is ``ceil(log2(width)) + 1`` bits; incrementing by the
    secret difference bit costs one AND per counter bit above the
    lowest.  Early cycles skip the upper-counter ANDs because those
    flip-flops still hold public zeros — the mechanism behind Table 1's
    modest Hamming improvements.
    """
    b = CircuitBuilder(f"hamming{width}_seq")
    x = b.alice_input(1)
    y = b.bob_input(1)
    cw = max(1, math.ceil(math.log2(width + 1)))
    counter = [b.dff() for _ in range(cw)]
    d = b.xor_(x[0], y[0])
    carry = d
    for i, q in enumerate(counter):
        b.drive_dff(q, b.xor_(q, carry))
        if i < cw - 1:
            carry = b.and_(q, carry)
    b.set_outputs(counter)
    return b.build(), width


def hamming_tree(width: int) -> Tuple[Netlist, int]:
    """Combinational tree-based Hamming distance (Huang et al. [11]).

    XOR the operands then popcount with a carry-save adder tree; this
    is the construction the paper uses for the C version, which beats
    the sequential HDL circuit by up to 77.8% (Table 2).
    """
    b = CircuitBuilder(f"hamming{width}_tree")
    x = b.alice_input(width)
    y = b.bob_input(width)
    diff = b.xor_bus(x, y)
    b.set_outputs(M.popcount(b, diff))
    return b.build(), 1


def mult_sequential(width: int) -> Tuple[Netlist, int]:
    """Shift-and-add multiplier: ``width`` cycles, truncated result.

    Per cycle: ``width`` partial-product ANDs plus a ``width``-bit
    accumulate (31 carry ANDs at width 32).  The first cycle's adder is
    skipped entirely — the accumulator starts at public zero.
    """
    b = CircuitBuilder(f"mult{width}_seq")
    x = b.alice_input(width)  # multiplicand, re-presented every cycle
    y = b.bob_input(1)  # multiplier bit i at cycle i
    acc = [b.dff() for _ in range(width)]
    # Shifted partial product: y_i & x, aligned by shifting the
    # accumulator right as we go (classic LSB-first shift-add).
    pp = b.and_bit(y[0], x)
    total = M.ripple_add(b, acc, pp, with_carry=True)
    # Accumulator shifts right each cycle; the shifted-out low bit
    # streams into the result register.
    for i in range(width - 1):
        b.drive_dff(acc[i], total[i + 1])
    b.drive_dff(acc[width - 1], total[width])
    result = [b.dff() for _ in range(width)]
    for i in range(width - 1):
        b.drive_dff(result[i], result[i + 1])
    b.drive_dff(result[width - 1], total[0])
    # Full 2*width-bit product: low half from the result shift
    # register, high half from the accumulator.  Keeping the
    # accumulator live means only the first cycle's adder is skipped
    # (Table 1: Mult 32 = 2,048 -> 2,016, 32 skipped).
    b.set_outputs(result + acc)
    return b.build(), width


def mult_combinational(width: int) -> Tuple[Netlist, int]:
    """Single-cycle truncated multiplier (993 ANDs at width 32)."""
    b = CircuitBuilder(f"mult{width}")
    x = b.alice_input(width)
    y = b.bob_input(width)
    b.set_outputs(M.multiply(b, x, y))
    return b.build(), 1
