"""AES-128 (with key expansion) as a sequential garbled circuit.

One AES round per clock cycle, 10 cycles, with the round keys computed
on the fly — the "missing key expansion module" the paper adds to the
TinyGarble AES benchmark (footnote to Tables 1-2).

The only non-linear element of AES is the S-box inversion in
GF(2^8).  We implement it over the composite tower field
GF(((2^2)^2)^2), where

* GF(2^2) multiplication costs 3 ANDs (Karatsuba),
* GF(2^4) multiplication costs 9 ANDs, inversion 9 ANDs
  (the GF(2^2) norm inverse is a squaring, which is linear),
* GF(2^8) inversion costs 36 ANDs: one GF(2^4) multiplication for the
  norm, one GF(2^4) inversion, and two output multiplications.

Everything else — the basis-change matrices in and out of the tower,
the AES affine map, ShiftRows, MixColumns, AddRoundKey, and the round
constants — is GF(2)-linear and therefore free under free-XOR.  The
cost is 20 S-boxes x 36 ANDs x 10 rounds = 7,200 garbled non-XOR
gates, versus the paper's 6,400 (their synthesis reaches the 32-AND
Boyar-Peralta S-box; the 4 extra ANDs per S-box are the documented gap
— see EXPERIMENTS.md).

The tower parameters and the GF(2^8) -> tower isomorphism are *derived
in this module* (a root of the AES polynomial is located in the tower
field and the basis-change matrices are built from its powers), and
the inversion formulas are verified exhaustively at import of the
self-check helpers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import InitSpec, Netlist

ROUNDS = 10

# -- integer tower-field arithmetic (reference + matrix derivation) ---------


def gf4_mul(a: int, b: int) -> int:
    """GF(2^2) = GF(2)[u]/(u^2+u+1); elements are 2-bit ints."""
    a0, a1 = a & 1, (a >> 1) & 1
    b0, b1 = b & 1, (b >> 1) & 1
    m0 = a0 & b0
    m1 = a1 & b1
    m2 = (a0 ^ a1) & (b0 ^ b1)
    return (m0 ^ m1) | ((m2 ^ m0) << 1)


def gf4_sq(a: int) -> int:
    a0, a1 = a & 1, (a >> 1) & 1
    return (a0 ^ a1) | (a1 << 1)


def gf4_mul_u(a: int) -> int:
    """Multiply by the GF(2^2) generator u (the lambda scaling)."""
    a0, a1 = a & 1, (a >> 1) & 1
    return a1 | ((a0 ^ a1) << 1)


LAMBDA = 0b10  # u, makes v^2 + v + u irreducible over GF(2^2)


def gf16_mul(a: int, b: int) -> int:
    """GF(2^4) = GF(2^2)[v]/(v^2+v+u); elements are 4-bit ints."""
    al, ah = a & 3, (a >> 2) & 3
    bl, bh = b & 3, (b >> 2) & 3
    m0 = gf4_mul(al, bl)
    m1 = gf4_mul(ah, bh)
    m2 = gf4_mul(al ^ ah, bl ^ bh)
    lo = m0 ^ gf4_mul_u(m1)
    hi = m2 ^ m0
    return lo | (hi << 2)


def gf16_sq(a: int) -> int:
    return gf16_mul(a, a)


def gf16_inv(a: int) -> int:
    """GF(2^4) inversion (0 maps to 0): 1 mul + linear ops."""
    al, ah = a & 3, (a >> 2) & 3
    nu = gf4_mul_u(gf4_sq(ah)) ^ gf4_mul(ah, al) ^ gf4_sq(al)
    nu_inv = gf4_sq(nu)  # x^-1 == x^2 in GF(4)
    hi = gf4_mul(ah, nu_inv)
    lo = gf4_mul(ah ^ al, nu_inv)
    return (hi << 2) | lo


def _find_mu() -> int:
    """Find mu in GF(2^4) making w^2 + w + mu irreducible."""
    for mu in range(1, 16):
        if all(gf16_mul(w, w) ^ w ^ mu for w in range(16)):
            return mu
    raise AssertionError("no irreducible mu found")


MU = _find_mu()


def gf256_mul(a: int, b: int) -> int:
    """Tower GF(2^8) = GF(2^4)[w]/(w^2+w+mu); 8-bit ints."""
    al, ah = a & 15, (a >> 4) & 15
    bl, bh = b & 15, (b >> 4) & 15
    m0 = gf16_mul(al, bl)
    m1 = gf16_mul(ah, bh)
    m2 = gf16_mul(al ^ ah, bl ^ bh)
    lo = m0 ^ gf16_mul(MU, m1)
    hi = m2 ^ m0
    return lo | (hi << 4)


def gf256_inv(a: int) -> int:
    """Tower GF(2^8) inversion (0 -> 0): 36 ANDs at the bit level."""
    al, ah = a & 15, (a >> 4) & 15
    delta = gf16_mul(MU, gf16_sq(ah)) ^ gf16_mul(ah, al) ^ gf16_sq(al)
    dinv = gf16_inv(delta)
    hi = gf16_mul(ah, dinv)
    lo = gf16_mul(ah ^ al, dinv)
    return (hi << 4) | lo


def aes_mul(a: int, b: int) -> int:
    """GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    r = 0
    for _ in range(8):
        if b & 1:
            r ^= a
        b >>= 1
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
    return r


@lru_cache(maxsize=1)
def tower_maps() -> Tuple[List[int], List[int]]:
    """Basis-change matrices AES-poly-basis <-> tower basis.

    Returned as two lists of 8 column masks: ``to_tower[j]`` is the
    tower representation of the AES basis element ``x^j``, so
    ``tower(a) = XOR of to_tower[j] for each set bit j of a`` — a pure
    GF(2) linear map.  Derived by locating a root of the AES
    polynomial in the tower field.
    """
    for h in range(2, 256):
        # Evaluate x^8+x^4+x^3+x+1 at h using tower arithmetic.
        p = [1]
        for _ in range(8):
            p.append(gf256_mul(p[-1], h))
        if p[8] ^ p[4] ^ p[3] ^ p[1] ^ 1 == 0:
            to_tower = p[:8]  # tower images of x^0 .. x^7
            # Invert the GF(2) matrix whose columns are to_tower.
            rows = list(to_tower)
            inv = _invert_gf2_columns(rows)
            return to_tower, inv
    raise AssertionError("no root of the AES polynomial in the tower")


def _invert_gf2_columns(cols: List[int]) -> List[int]:
    """Invert an 8x8 GF(2) matrix given as 8 column masks.

    Row-reduces the matrix augmented with the identity; returns the
    inverse again as 8 column masks.
    """
    n = 8
    # rows[i] = (matrix row i as a bitmask over j, identity row i)
    rows = []
    for i in range(n):
        row = 0
        for j in range(n):
            row |= ((cols[j] >> i) & 1) << j
        rows.append([row, 1 << i])
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if (rows[r][0] >> col) & 1), None
        )
        if pivot is None:
            raise AssertionError("singular basis-change matrix")
        rows[col], rows[pivot] = rows[pivot], rows[col]
        for r in range(n):
            if r != col and (rows[r][0] >> col) & 1:
                rows[r][0] ^= rows[col][0]
                rows[r][1] ^= rows[col][1]
    inv_cols = [0] * n
    for i in range(n):
        for j in range(n):
            if (rows[i][1] >> j) & 1:
                inv_cols[j] |= 1 << i
    return inv_cols


def apply_columns(cols: Sequence[int], value: int) -> int:
    """Apply a GF(2) linear map given as column masks."""
    out = 0
    for j in range(8):
        if (value >> j) & 1:
            out ^= cols[j]
    return out


#: AES affine transform columns (output bit masks per input bit) and
#: constant: sbox(x) = A * inv(x) + 0x63 in the AES basis.
AFFINE_COLS: List[int] = []
for j in range(8):
    col = 0
    for i in range(8):
        # sbox affine: b_i = x_i ^ x_{(i+4)%8} ^ x_{(i+5)%8} ^
        #                    x_{(i+6)%8} ^ x_{(i+7)%8} ^ c_i
        if j in (i, (i + 4) % 8, (i + 5) % 8, (i + 6) % 8, (i + 7) % 8):
            col |= 1 << i
    AFFINE_COLS.append(col)
AFFINE_CONST = 0x63


def sbox_reference(x: int) -> int:
    """S-box via the tower inversion (used to self-check the circuit)."""
    to_t, from_t = tower_maps()
    t = apply_columns(to_t, x)
    t = gf256_inv(t)
    v = apply_columns(from_t, t)
    return apply_columns(AFFINE_COLS, v) ^ AFFINE_CONST


# -- circuit builders --------------------------------------------------------


def _xor_many(b: CircuitBuilder, wires: List[int]) -> int:
    out = b.const(0)
    for w in wires:
        out = b.xor_(out, w)
    return out


def _linear_map(b: CircuitBuilder, cols: Sequence[int], bits: Sequence[int]) -> List[int]:
    """Free GF(2) linear map over wire bits (LSB first)."""
    out = []
    for i in range(8):
        terms = [bits[j] for j in range(8) if (cols[j] >> i) & 1]
        out.append(_xor_many(b, terms))
    return out


def _gf4_mul_c(b, x, y):
    m0 = b.and_(x[0], y[0])
    m1 = b.and_(x[1], y[1])
    m2 = b.and_(b.xor_(x[0], x[1]), b.xor_(y[0], y[1]))
    return [b.xor_(m0, m1), b.xor_(m2, m0)]


def _gf4_sq_c(b, x):
    return [b.xor_(x[0], x[1]), x[1]]


def _gf4_mul_u_c(b, x):
    return [x[1], b.xor_(x[0], x[1])]


def _gf16_mul_c(b, x, y):
    xl, xh = x[:2], x[2:]
    yl, yh = y[:2], y[2:]
    m0 = _gf4_mul_c(b, xl, yl)
    m1 = _gf4_mul_c(b, xh, yh)
    m2 = _gf4_mul_c(
        b, [b.xor_(xl[0], xh[0]), b.xor_(xl[1], xh[1])],
        [b.xor_(yl[0], yh[0]), b.xor_(yl[1], yh[1])],
    )
    lam = _gf4_mul_u_c(b, m1)
    lo = [b.xor_(m0[0], lam[0]), b.xor_(m0[1], lam[1])]
    hi = [b.xor_(m2[0], m0[0]), b.xor_(m2[1], m0[1])]
    return lo + hi


def _gf16_scale_c(b, const4: int, x):
    """Multiply by a GF(2^4) constant: a free linear map."""
    out_cols = [gf16_mul(const4, 1 << j) for j in range(4)]
    out = []
    for i in range(4):
        terms = [x[j] for j in range(4) if (out_cols[j] >> i) & 1]
        out.append(_xor_many(b, terms))
    return out


def _gf16_sq_c(b, x):
    """Squaring in GF(2^4) is GF(2)-linear: derive columns and wire XORs."""
    cols = [gf16_sq(1 << j) for j in range(4)]
    out = []
    for i in range(4):
        terms = [x[j] for j in range(4) if (cols[j] >> i) & 1]
        out.append(_xor_many(b, terms))
    return out


def _gf16_inv_c(b, x):
    xl, xh = x[:2], x[2:]
    hl = _gf4_mul_c(b, xh, xl)  # 3 ANDs
    sq_h = _gf4_sq_c(b, xh)
    sq_l = _gf4_sq_c(b, xl)
    nu = [
        b.xor_(b.xor_(_gf4_mul_u_c(b, sq_h)[i], hl[i]), sq_l[i])
        for i in range(2)
    ]
    nu_inv = _gf4_sq_c(b, nu)
    hi = _gf4_mul_c(b, xh, nu_inv)  # 3
    lo = _gf4_mul_c(b, [b.xor_(xh[0], xl[0]), b.xor_(xh[1], xl[1])], nu_inv)  # 3
    return lo + hi


def _gf256_inv_c(b, x):
    """Tower inversion circuit: 36 AND gates."""
    xl, xh = x[:4], x[4:]
    prod = _gf16_mul_c(b, xh, xl)  # 9
    sq_h = _gf16_sq_c(b, xh)
    sq_l = _gf16_sq_c(b, xl)
    musq = _gf16_scale_c(b, MU, sq_h)
    delta = [b.xor_(b.xor_(musq[i], prod[i]), sq_l[i]) for i in range(4)]
    dinv = _gf16_inv_c(b, delta)  # 9
    hi = _gf16_mul_c(b, xh, dinv)  # 9
    xsum = [b.xor_(xh[i], xl[i]) for i in range(4)]
    lo = _gf16_mul_c(b, xsum, dinv)  # 9
    return lo + hi


def sbox_circuit(b: CircuitBuilder, bits: Sequence[int]) -> List[int]:
    """AES S-box over 8 wires: 36 garbled ANDs, everything else free."""
    to_t, from_t = tower_maps()
    t = _linear_map(b, to_t, bits)
    t = _gf256_inv_c(b, t)
    v = _linear_map(b, from_t, t)
    out = _linear_map(b, AFFINE_COLS, v)
    return [
        b.xor_(w, b.const(1)) if (AFFINE_CONST >> i) & 1 else w
        for i, w in enumerate(out)
    ]


def _mix_single_column(b: CircuitBuilder, col: List[List[int]]) -> List[List[int]]:
    """MixColumns on one 4-byte column (bytes as 8-wire lists); free."""

    def xtime(byte):
        # multiply by x: shift + conditional 0x1b, all linear
        out = [b.const(0)] * 8
        for i in range(7):
            out[i + 1] = byte[i]
        msb = byte[7]
        # xor 0x1b = bits 0,1,3,4
        out[0] = msb
        out[1] = b.xor_(out[1], msb)
        out[3] = b.xor_(out[3], msb)
        out[4] = b.xor_(out[4], msb)
        return out

    def xor_b(x, y):
        return [b.xor_(i, j) for i, j in zip(x, y)]

    a0, a1, a2, a3 = col
    t = xor_b(xor_b(a0, a1), xor_b(a2, a3))
    out = []
    for i in range(4):
        ai = col[i]
        ai1 = col[(i + 1) % 4]
        out.append(xor_b(xor_b(ai, t), xtime(xor_b(ai, ai1))))
    return out


#: AES key-schedule round constants.
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def aes128_sequential() -> Tuple[Netlist, int]:
    """Build the sequential AES-128 circuit (one round per cycle).

    Alice's init vector holds the 128-bit key, Bob's the 128-bit
    plaintext (LSB-first within each byte, bytes in AES order).  The
    output is the 128-bit ciphertext.  Runs for 10 cycles.
    """
    b = CircuitBuilder("aes128_seq")

    key = [[b.dff(init=InitSpec("alice", 8 * byte + i)) for i in range(8)]
           for byte in range(16)]
    # State registers start at plaintext; the round-0 AddRoundKey is
    # applied inside cycle 1 (public counter select, free).
    state = [[b.dff(init=InitSpec("bob", 8 * byte + i)) for i in range(8)]
             for byte in range(16)]

    from ..circuit import modules as M
    from ..circuit.macros import Rom, const_words

    counter = b.dff_bus(4, 0)
    b.drive_dff_bus(counter, M.increment(b, counter))
    is_first = M.is_zero(b, counter)
    is_last = M.equals(b, counter, b.const_bus(ROUNDS - 1, 4))
    rcon_rom = b.net.add_macro(Rom("rcon", 8, const_words(RCON, 8)))
    rcon = rcon_rom.read(b, counter)

    def xor_bytes(x, y):
        return [b.xor_(i, j) for i, j in zip(x, y)]

    # Key schedule: one round per cycle.  words are 4 bytes each.
    kwords = [key[4 * w: 4 * w + 4] for w in range(4)]
    rot = [kwords[3][1], kwords[3][2], kwords[3][3], kwords[3][0]]
    subbed = [sbox_circuit(b, byte) for byte in rot]
    subbed[0] = [
        b.xor_(w, r) for w, r in zip(subbed[0], rcon)
    ]
    new_words = []
    prev = [xor_bytes(kwords[0][i], subbed[i]) for i in range(4)]
    new_words.append(prev)
    for w in range(1, 4):
        prev = [xor_bytes(kwords[w][i], prev[i]) for i in range(4)]
        new_words.append(prev)
    new_key = [byte for word in new_words for byte in word]

    # Round datapath.
    pre = [
        b.mux_bus_kill(is_first, state[i], xor_bytes(state[i], key[i]))
        for i in range(16)
    ]
    sub = [sbox_circuit(b, byte) for byte in pre]
    # ShiftRows: with column-major state (index = 4*col + row), the
    # byte at (row, col) comes from (row, col + row).
    shifted = [None] * 16
    for col in range(4):
        for row in range(4):
            shifted[4 * col + row] = sub[4 * ((col + row) % 4) + row]
    mixed: List[List[int]] = []
    for col in range(4):
        mixed.extend(_mix_single_column(b, shifted[4 * col: 4 * col + 4]))
    after_mc = [
        b.mux_bus_kill(is_last, mixed[i], shifted[i]) for i in range(16)
    ]
    new_state = [xor_bytes(after_mc[i], new_key[i]) for i in range(16)]

    for i in range(16):
        b.drive_dff_bus(state[i], new_state[i])
        b.drive_dff_bus(key[i], new_key[i])

    b.set_outputs([w for byte in state for w in byte])
    return b.build(), ROUNDS


def aes128_reference(key: bytes, pt: bytes) -> bytes:
    """Reference AES-128 encryption (validated against test vectors)."""
    to_t, from_t = tower_maps()

    def sbox(x):
        return sbox_reference(x)

    rk = [list(key)]
    for rnd in range(10):
        prev = rk[-1]
        word = prev[12:16]
        word = [sbox(word[1]), sbox(word[2]), sbox(word[3]), sbox(word[0])]
        word[0] ^= RCON[rnd]
        new = []
        for i in range(4):
            w = [prev[4 * i + j] ^ word[j] for j in range(4)] if i == 0 else [
                prev[4 * i + j] ^ new[-1][j] for j in range(4)
            ]
            new.append(w)
            word = w
        rk.append([x for w in new for x in w])

    state = [p ^ k for p, k in zip(pt, rk[0])]
    for rnd in range(1, 11):
        state = [sbox(x) for x in state]
        # ShiftRows (column-major state).
        shifted = [0] * 16
        for col in range(4):
            for row in range(4):
                shifted[4 * col + row] = state[4 * ((col + row) % 4) + row]
        state = shifted
        if rnd != 10:
            mixed = []
            for col in range(4):
                a = state[4 * col: 4 * col + 4]
                t = a[0] ^ a[1] ^ a[2] ^ a[3]
                mixed.extend(
                    a[i] ^ t ^ aes_mul(a[i] ^ a[(i + 1) % 4], 2)
                    for i in range(4)
                )
            state = mixed
        state = [s ^ k for s, k in zip(state, rk[rnd])]
    return bytes(state)
