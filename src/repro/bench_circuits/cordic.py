"""Universal CORDIC [43] as a sequential garbled circuit (Table 5).

One CORDIC iteration per clock cycle over 32-bit fixed point numbers
(2 integer bits, 30 fraction bits — the paper's Q2.30 format), 32
iterations.  Registers x, y, z update as::

    x' = x - m * d * (y >> i)
    y' = y + d * (x >> i)
    z' = z - d * alpha[i]

with coordinate system m in {circular, linear, hyperbolic} and
direction d in {+1, -1} decided by the sign of z (rotation mode) or y
(vectoring mode).

Cost anatomy under SkipGate: the iteration index is a public counter,
so the shifts are free rewiring and the lookup of ``alpha[i]`` is a
free ROM access; the sign bit of z (or y) is secret, so each of the
three updates is one conditional add/subtract — an n-bit adder with
the subtrahend XOR-conditioned on the sign (about 32 ANDs each).
That is ~96 garbled gates per iteration, in line with the paper's
4,601 total for CORDIC 32 (Table 5).

Inputs are XOR-shared between the parties (Section 5.7 convention).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..circuit import modules as M
from ..circuit.builder import CircuitBuilder
from ..circuit.macros import Rom, const_words
from ..circuit.netlist import InitSpec, Netlist

WIDTH = 32
FRAC_BITS = 30
ITERATIONS = 32


def to_fixed(value: float) -> int:
    """Encode a float as Q2.30 two's complement."""
    scaled = int(round(value * (1 << FRAC_BITS)))
    return scaled & ((1 << WIDTH) - 1)


def from_fixed(word: int) -> float:
    """Decode a Q2.30 two's complement word."""
    if word >> (WIDTH - 1):
        word -= 1 << WIDTH
    return word / (1 << FRAC_BITS)


def circular_gain(iterations: int = ITERATIONS) -> float:
    """The CORDIC gain K = prod sqrt(1 + 2^-2i)."""
    k = 1.0
    for i in range(iterations):
        k *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    return k


def _alpha_table(system: str) -> List[int]:
    out = []
    for i in range(ITERATIONS):
        t = 2.0 ** -i
        if system == "circular":
            out.append(to_fixed(math.atan(t)))
        elif system == "linear":
            out.append(to_fixed(t))
        elif system == "hyperbolic":
            out.append(to_fixed(math.atanh(t) if 0 < t < 1 else 0.0))
        else:
            raise ValueError(f"unknown coordinate system {system!r}")
    return out


def _add_sub(b: CircuitBuilder, acc, operand, neg):
    """``acc + operand`` if neg == 0 else ``acc - operand``.

    One n-bit adder: the operand is XOR-conditioned on the (possibly
    secret) ``neg`` bit and ``neg`` feeds the carry-in.
    """
    conditioned = [b.xor_(w, neg) for w in operand]
    return M.ripple_add(b, acc, conditioned, cin=neg)


def cordic_sequential(
    mode: str = "rotation", system: str = "circular"
) -> Tuple[Netlist, int]:
    """Build the universal CORDIC circuit; returns ``(net, 32)``.

    The init vectors hold, XOR-shared, the packed ``x || y || z``
    words (3 x 32 bits).  Outputs are the final ``x || y || z``.
    ``mode`` is ``"rotation"`` or ``"vectoring"``; ``system`` selects
    the coordinate system; both are public (they define the function
    being computed, like the paper's CORDIC benchmark).
    """
    if mode not in ("rotation", "vectoring"):
        raise ValueError(f"unknown mode {mode!r}")
    b = CircuitBuilder(f"cordic_{mode}_{system}")

    x = [b.dff(init=InitSpec("shared", i)) for i in range(WIDTH)]
    y = [b.dff(init=InitSpec("shared", WIDTH + i)) for i in range(WIDTH)]
    z = [b.dff(init=InitSpec("shared", 2 * WIDTH + i)) for i in range(WIDTH)]

    counter = b.dff_bus(5, 0)
    b.drive_dff_bus(counter, M.increment(b, counter))

    alpha_rom = b.net.add_macro(
        Rom("alpha", WIDTH, const_words(_alpha_table(system), WIDTH))
    )
    alpha = alpha_rom.read(b, counter)

    # Shifts by the public iteration index: a barrel shifter whose
    # select bits are public is free at runtime.
    y_shift = M.barrel_shifter(b, y, counter, "right", arith=True)
    x_shift = M.barrel_shifter(b, x, counter, "right", arith=True)

    # Direction bit: d = -1 (subtract from x) iff dneg == 1.
    if mode == "rotation":
        dneg = z[WIDTH - 1]  # z < 0 -> rotate negative
    else:
        dneg = b.not_(y[WIDTH - 1])  # vectoring: drive y toward 0

    # x' = x - m*d*(y >> i)
    if system == "circular":
        x_next = _add_sub(b, x, y_shift, b.not_(dneg))
    elif system == "linear":
        x_next = list(x)
    else:  # hyperbolic: x' = x + d*(y >> i)
        x_next = _add_sub(b, x, y_shift, dneg)
    y_next = _add_sub(b, y, x_shift, dneg)
    z_next = _add_sub(b, z, alpha, b.not_(dneg))

    b.drive_dff_bus(x, x_next)
    b.drive_dff_bus(y, y_next)
    b.drive_dff_bus(z, z_next)
    b.set_outputs(x + y + z)
    return b.build(), ITERATIONS


def cordic_reference(
    x: float, y: float, z: float, mode: str = "rotation", system: str = "circular"
) -> Tuple[float, float, float]:
    """Fixed-point reference model (bit-exact with the circuit)."""
    xi, yi, zi = to_fixed(x), to_fixed(y), to_fixed(z)
    alphas = _alpha_table(system)
    mask = (1 << WIDTH) - 1

    def sra(v, n):
        if v >> (WIDTH - 1):
            v -= 1 << WIDTH
        return (v >> n) & mask

    for i in range(ITERATIONS):
        z_neg = (zi >> (WIDTH - 1)) & 1
        y_neg = (yi >> (WIDTH - 1)) & 1
        dneg = z_neg if mode == "rotation" else 1 - y_neg
        ys = sra(yi, i)
        xs = sra(xi, i)
        if system == "circular":
            x_next = (xi + ys if dneg else xi - ys) & mask
        elif system == "linear":
            x_next = xi
        else:
            x_next = (xi - ys if dneg else xi + ys) & mask
        y_next = (yi - xs if dneg else yi + xs) & mask
        z_next = (zi + alphas[i] if dneg else zi - alphas[i]) & mask
        xi, yi, zi = x_next, y_next, z_next
    return from_fixed(xi), from_fixed(yi), from_fixed(zi)
