"""Matrix multiplication as a sequential MAC machine.

One multiply-accumulate per clock cycle, ``N^3`` cycles (plus one
drain cycle whose work SkipGate filters out entirely).  The operand
matrices live in RAM macros initialized with the parties' inputs; all
loop indices are public counters, so every memory access is free and
the per-cycle garbling cost is exactly one truncated 32-bit multiply
(993 tables) plus one 32-bit accumulate (31 tables).

The accumulator RAM starts at public zero, so the first MAC into each
of the ``N^2`` result cells skips its adder (31 tables): the total with
SkipGate is ``N^3 * 1024 - N^2 * 31``, which reproduces the paper's
MatrixMult numbers *exactly* — 27,369 / 127,225 / 522,304 garbled
non-XOR gates for 3x3 / 5x5 / 8x8, and 279 / 775 / 1,984 skipped gates
(Tables 1, 2, 3).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..circuit import modules as M
from ..circuit.builder import CircuitBuilder
from ..circuit.macros import Ram, input_words, zero_words
from ..circuit.netlist import Netlist


def _width_for(n_values: int) -> int:
    return max(1, math.ceil(math.log2(max(n_values, 2))))


def matrix_mult_sequential(n: int, width: int = 32) -> Tuple[Netlist, int]:
    """Build the ``n x n`` matrix multiplier; returns ``(net, cycles)``.

    Alice's init vector holds matrix A (row major), Bob's matrix B.
    The outputs are the ``n^2 * width`` bits of C = A x B (row major),
    read through free constant-address ports.  ``cycles = n^3 + 1``:
    the extra drain cycle lets the final MAC result land in the
    accumulator memory; its own (bogus) MAC is disabled by a public
    done flag, and recursive fanout reduction filters every one of its
    garbled tables, so the drain cycle is free.
    """
    b = CircuitBuilder(f"matmult{n}x{n}_{width}")
    cells = n * n
    a_mem = b.net.add_macro(Ram("A", width, input_words("alice", cells, width)))
    b_mem = b.net.add_macro(Ram("B", width, input_words("bob", cells, width)))
    c_mem = b.net.add_macro(Ram("C", width, zero_words(cells, width)))
    c_mem.keep_final_writes = True

    abits = a_mem.addr_bits

    # Public loop counters i, j, k with k innermost; i has one extra
    # bit so it can represent the done value n.
    cw = _width_for(n)
    cwi = _width_for(n + 1)
    k = b.dff_bus(cw, 0)
    j = b.dff_bus(cw, 0)
    i = b.dff_bus(cwi, 0)
    k_last = M.equals(b, k, b.const_bus(n - 1, cw))
    j_last = M.equals(b, j, b.const_bus(n - 1, cw))
    done = M.equals(b, i, b.const_bus(n, cwi))
    k_next = b.mux_bus(k_last, M.increment(b, k), b.const_bus(0, cw))
    j_bump = b.mux_bus(k_last, j, M.increment(b, j))
    j_next = b.mux_bus(b.and_(k_last, j_last), j_bump, b.const_bus(0, cw))
    i_next = b.mux_bus(b.and_(k_last, j_last), i, M.increment(b, i))
    b.drive_dff_bus(k, k_next)
    b.drive_dff_bus(j, j_next)
    b.drive_dff_bus(i, i_next)

    def scale_add(x_bus: List[int], y_bus: List[int]) -> List[int]:
        """Public address arithmetic ``idx = x*n + y`` (free: category i)."""
        acc = [b.const(0)] * abits
        for bit, x in enumerate(x_bus):
            if bit >= abits:
                break
            term = [b.const(0)] * bit + b.and_bit(
                x, b.const_bus(n, abits - bit)
            )
            acc = M.ripple_add(b, acc, term[:abits])
        ypad = list(y_bus) + [b.const(0)] * abits
        return M.ripple_add(b, acc, ypad[:abits])

    a_addr = scale_add(i, k)
    b_addr = scale_add(k, j)
    c_addr = scale_add(i, j)

    a_val = a_mem.read(b, a_addr)
    b_val = b_mem.read(b, b_addr)
    c_val = c_mem.read(b, c_addr)

    prod = M.multiply(b, a_val, b_val)
    total = M.ripple_add(b, c_val, prod)
    c_mem.write(b, c_addr, total, b.not_(done))

    outputs: List[int] = []
    for cell in range(cells):
        outputs.extend(c_mem.read(b, b.const_bus(cell, abits)))
    b.set_outputs(outputs)
    return b.build(), n * n * n + 1
