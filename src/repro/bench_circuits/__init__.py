"""GC-optimized benchmark circuits (the TinyGarble-style suite).

One builder per benchmark function of the paper's evaluation; each
returns ``(netlist, cycles)``.
"""

from .aes import aes128_sequential
from .basic import (
    compare_combinational,
    compare_sequential,
    hamming_sequential,
    hamming_tree,
    mult_combinational,
    mult_sequential,
    sum_combinational,
    sum_sequential,
)
from .cordic import cordic_sequential
from .matrix_mult import matrix_mult_sequential
from .sha3 import sha3_256_sequential

__all__ = [
    "aes128_sequential",
    "compare_combinational",
    "compare_sequential",
    "cordic_sequential",
    "hamming_sequential",
    "hamming_tree",
    "matrix_mult_sequential",
    "mult_combinational",
    "mult_sequential",
    "sha3_256_sequential",
    "sum_combinational",
    "sum_sequential",
]
